package experiments

import (
	"context"
	"fmt"
	"math/rand"

	"hsgf/internal/core"
	"hsgf/internal/datagen"
	"hsgf/internal/embed"
	"hsgf/internal/graph"
	"hsgf/internal/ml"
)

// UnlabeledName is the label substituted for removed node labels in the
// partial-labelling experiment (Figure 5 D-F).
const UnlabeledName = "unlabeled"

// Embedding family identifiers reused from the rank experiment:
// FamSubgraph, FamNode2Vec, FamDeepWalk, FamLINE.

// LabelFamilies lists the feature families of Figure 5 in display order.
var LabelFamilies = []string{FamSubgraph, FamNode2Vec, FamDeepWalk, FamLINE}

// LabelDataset is one evaluation network for the label-prediction task.
type LabelDataset struct {
	Name  string
	Graph *graph.Graph
}

// LoadLabelDatasets generates the three evaluation networks in the order
// the paper reports them: LOAD, IMDB, MAG. scale in (0, 1] shrinks the
// generators for fast runs.
func LoadLabelDatasets(scale float64, seed int64) ([]LabelDataset, error) {
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("experiments: scale must be in (0,1], got %v", scale)
	}
	sc := func(n int) int {
		v := int(float64(n) * scale)
		if v < 1 {
			v = 1
		}
		return v
	}

	co := datagen.DefaultCooccurrenceConfig()
	co.Seed = seed
	co.Locations = sc(co.Locations)
	co.Organizations = sc(co.Organizations)
	co.Actors = sc(co.Actors)
	co.Dates = sc(co.Dates)
	co.Documents = sc(co.Documents)
	load, err := datagen.GenerateCooccurrence(co)
	if err != nil {
		return nil, err
	}

	mv := datagen.DefaultMovieConfig()
	mv.Seed = seed + 1
	mv.Movies = sc(mv.Movies)
	mv.Actors = sc(mv.Actors)
	mv.Directors = sc(mv.Directors)
	mv.Writers = sc(mv.Writers)
	mv.Composers = sc(mv.Composers)
	mv.Keywords = sc(mv.Keywords)
	imdb, err := datagen.GenerateMovie(mv)
	if err != nil {
		return nil, err
	}

	pc := datagen.DefaultPublicationConfig()
	pc.Seed = seed + 2
	pc.Institutions = sc(pc.Institutions)
	if pc.Institutions < 2 {
		pc.Institutions = 2
	}
	pc.PapersPerConfYear = sc(pc.PapersPerConfYear)
	pc.ExternalPapers = sc(pc.ExternalPapers)
	mag, err := datagen.GeneratePublication(pc)
	if err != nil {
		return nil, err
	}

	return []LabelDataset{
		{Name: "LOAD", Graph: load.Graph},
		{Name: "IMDB", Graph: imdb.Graph},
		{Name: "MAG", Graph: mag.Graph},
	}, nil
}

// LabelConfig parameterises the label-prediction experiments.
type LabelConfig struct {
	PerLabel  int     // sampled nodes per label; the paper uses 250
	MaxEdges  int     // subgraph emax; the paper uses 5
	DmaxLevel float64 // hub cutoff percentile for extraction (paper: 0.90)

	EmbedDim     int
	Walks        embed.WalkConfig
	SGNS         embed.SGNSConfig
	LINESamplesX int

	Repeats    int       // train/test resamples per point (paper: 100)
	TrainFracs []float64 // Figure 5 A-C x-axis
	Removals   []float64 // Figure 5 D-F x-axis (fraction of removed labels)
	DmaxLevels []float64 // Table 2 columns
	EmaxValues []int     // emax sensitivity sweep (§3.1 ablation)

	// CGrid, when non-empty, cross-validates the logistic regression's
	// inverse regularisation strength over this grid on every training
	// split (the paper's §4.3.3 tuning step). Empty keeps C = 1.
	CGrid []float64

	Seed    int64
	Workers int

	// EmbedWorkers parallelises embedding training (walk sharding plus
	// Hogwild SGNS/LINE). 0 or 1 keeps the exact serial trainers, whose
	// output is bitwise-deterministic under Seed; >1 trades that for
	// multicore training (walk corpora stay deterministic regardless).
	EmbedWorkers int
}

// DefaultLabelConfig returns a laptop-scale configuration preserving the
// paper's protocol shape.
func DefaultLabelConfig() LabelConfig {
	return LabelConfig{
		PerLabel:     80,
		MaxEdges:     4,
		DmaxLevel:    0.90,
		EmbedDim:     32,
		Walks:        embed.WalkConfig{WalksPerNode: 5, WalkLength: 20, ReturnP: 1, InOutQ: 1},
		SGNS:         embed.SGNSConfig{Dim: 32, Window: 5, Negatives: 5, Epochs: 1},
		LINESamplesX: 20,
		Repeats:      10,
		TrainFracs:   []float64{0.1, 0.3, 0.5, 0.7, 0.9},
		Removals:     []float64{0, 0.15, 0.30, 0.45, 0.60, 0.75},
		DmaxLevels:   []float64{0.90, 0.92, 0.94, 0.96, 0.98, 1.00},
		EmaxValues:   []int{2, 3, 4, 5},
		Seed:         11,
		Workers:      0,
	}
}

// FullLabelConfig returns the paper's settings (§4.3.2-4.3.3): 250 nodes
// per label, emax=5, d=128 embeddings, 100 resamples.
func FullLabelConfig() LabelConfig {
	cfg := DefaultLabelConfig()
	cfg.PerLabel = 250
	cfg.MaxEdges = 5
	cfg.EmbedDim = 128
	cfg.Walks = embed.DefaultWalkConfig()
	cfg.SGNS = embed.DefaultSGNSConfig()
	cfg.LINESamplesX = 100
	cfg.Repeats = 100
	cfg.TrainFracs = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	cfg.CGrid = []float64{0.01, 0.1, 1, 10}
	return cfg
}

// labelSample is the evaluation node sample of one dataset: the nodes,
// their true labels, and the extracted features per family.
type labelSample struct {
	nodes    []graph.NodeID
	y        []int
	censuses []*core.Census         // subgraph censuses (keys only)
	embParts map[string][][]float64 // embedding rows per family
}

// sampleNodes draws up to perLabel nodes of every label, deterministic in
// rng.
func sampleNodes(g *graph.Graph, perLabel int, rng *rand.Rand) ([]graph.NodeID, []int) {
	var nodes []graph.NodeID
	var y []int
	for l := 0; l < g.NumLabels(); l++ {
		members := g.NodesWithLabel(graph.Label(l))
		if len(members) == 0 {
			continue
		}
		rng.Shuffle(len(members), func(a, b int) { members[a], members[b] = members[b], members[a] })
		n := perLabel
		if n > len(members) {
			n = len(members)
		}
		for _, v := range members[:n] {
			nodes = append(nodes, v)
			y = append(y, int(l))
		}
	}
	return nodes, y
}

// extractSample computes subgraph censuses and embeddings for a node
// sample of g. ctx cancels the embedding training loops.
func extractSample(ctx context.Context, g *graph.Graph, cfg LabelConfig, rng *rand.Rand) (*labelSample, error) {
	s := &labelSample{embParts: make(map[string][][]float64)}
	s.nodes, s.y = sampleNodes(g, cfg.PerLabel, rng)
	if len(s.nodes) == 0 {
		return nil, fmt.Errorf("experiments: empty node sample")
	}

	dmax := 0
	if cfg.DmaxLevel > 0 && cfg.DmaxLevel < 1 {
		dmax = graph.DegreePercentile(g, cfg.DmaxLevel)
	}
	ex, err := core.NewExtractor(g, core.Options{
		MaxEdges:      cfg.MaxEdges,
		MaxDegree:     dmax,
		MaskRootLabel: true,
	})
	if err != nil {
		return nil, err
	}
	s.censuses = ex.CensusAll(s.nodes, cfg.Workers)

	wcfg := cfg.Walks
	wcfg.Workers = cfg.EmbedWorkers
	scfg := cfg.SGNS
	scfg.Dim = cfg.EmbedDim
	scfg.Workers = cfg.EmbedWorkers
	seed := cfg.Seed * 997
	dw, err := embed.DeepWalk(ctx, g, wcfg, scfg, rand.New(rand.NewSource(seed)))
	if err != nil {
		return nil, err
	}
	n2v, err := embed.Node2Vec(ctx, g, wcfg, scfg, rand.New(rand.NewSource(seed+1)))
	if err != nil {
		return nil, err
	}
	line, err := embed.LINE(ctx, g, embed.LINEConfig{Dim: cfg.EmbedDim / 2, Negatives: 5,
		Samples: cfg.LINESamplesX * g.NumEdges(), Workers: cfg.EmbedWorkers}, rand.New(rand.NewSource(seed+2)))
	if err != nil {
		return nil, err
	}
	for fam, vecs := range map[string][][]float64{FamDeepWalk: dw, FamNode2Vec: n2v, FamLINE: line} {
		rows := make([][]float64, len(s.nodes))
		for i, v := range s.nodes {
			rows[i] = vecs[v]
		}
		s.embParts[fam] = rows
	}
	return s, nil
}

// evalSplit trains the one-vs-rest logistic classifier on one family's
// train rows and returns the Macro F1 on the test rows. Subgraph count
// features get a log1p variance stabilisation; all features are
// standardised with training statistics. A non-empty cGrid tunes the
// regularisation strength by cross-validation on the training rows
// (§4.3.3).
func evalSplit(x [][]float64, y []int, trainIdx, testIdx []int, logCounts bool, cGrid []float64) (float64, error) {
	xtr := ml.Rows(x, trainIdx)
	xte := ml.Rows(x, testIdx)
	if logCounts {
		xtr = ml.Log1p(xtr)
		xte = ml.Log1p(xte)
	}
	var sc ml.StandardScaler
	xtrS, err := sc.FitTransform(xtr)
	if err != nil {
		return 0, err
	}
	xteS := sc.Transform(xte)
	c := 1.0
	if len(cGrid) > 0 && len(trainIdx) >= 6 {
		tuned, err := ml.TuneLogRegC(xtrS, ml.Ints(y, trainIdx), cGrid, 3, rand.New(rand.NewSource(int64(len(trainIdx)))))
		if err != nil {
			return 0, err
		}
		c = tuned
	}
	clf := ml.OneVsRest{C: c, MaxIter: 100}
	if err := clf.Fit(xtrS, ml.Ints(y, trainIdx)); err != nil {
		return 0, err
	}
	return ml.MacroF1(ml.Ints(y, testIdx), clf.Predict(xteS)), nil
}

// subgraphRows assembles the subgraph design matrix with a vocabulary
// built from the training rows only.
func subgraphRows(censuses []*core.Census, trainIdx []int) [][]float64 {
	vocab := core.NewVocabulary()
	for _, r := range trainIdx {
		if censuses[r] != nil {
			vocab.AddCensus(censuses[r])
		}
	}
	return core.Matrix(censuses, vocab)
}

// CurvePoint is one (training fraction, score) measurement with its 95%
// confidence half-width over repeats.
type CurvePoint struct {
	X    float64
	Mean float64
	CI95 float64
}

// TrainingSizeCurves runs Figure 5 A-C for one dataset: Macro F1 per
// feature family across training fractions, averaged over cfg.Repeats
// stratified resamples. ctx cancels the embedding training phase.
func TrainingSizeCurves(ctx context.Context, g *graph.Graph, cfg LabelConfig) (map[string][]CurvePoint, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	sample, err := extractSample(ctx, g, cfg, rng)
	if err != nil {
		return nil, err
	}
	out := make(map[string][]CurvePoint)
	for _, frac := range cfg.TrainFracs {
		scores := make(map[string][]float64)
		for rep := 0; rep < cfg.Repeats; rep++ {
			splitRng := rand.New(rand.NewSource(cfg.Seed + int64(rep)*1009 + int64(frac*1000)))
			trainIdx, testIdx, err := ml.StratifiedSplit(sample.y, frac, splitRng)
			if err != nil {
				return nil, err
			}
			sub := subgraphRows(sample.censuses, trainIdx)
			f1, err := evalSplit(sub, sample.y, trainIdx, testIdx, true, cfg.CGrid)
			if err != nil {
				return nil, err
			}
			scores[FamSubgraph] = append(scores[FamSubgraph], f1)
			for fam, rows := range sample.embParts {
				f1, err := evalSplit(rows, sample.y, trainIdx, testIdx, false, cfg.CGrid)
				if err != nil {
					return nil, err
				}
				scores[fam] = append(scores[fam], f1)
			}
		}
		for fam, ss := range scores {
			m, _ := ml.MeanStd(ss)
			out[fam] = append(out[fam], CurvePoint{X: frac, Mean: m, CI95: ml.ConfidenceInterval95(ss)})
		}
	}
	return out, nil
}

// relabelFraction returns a copy of g over an alphabet extended with the
// UnlabeledName label, with the given fraction of nodes relabelled to it.
func relabelFraction(g *graph.Graph, frac float64, rng *rand.Rand) (*graph.Graph, error) {
	names := append(g.Alphabet().Names(), UnlabeledName)
	alpha, err := graph.NewAlphabet(names...)
	if err != nil {
		return nil, err
	}
	unl := graph.Label(len(names) - 1)
	b := graph.NewBuilderWithAlphabet(alpha)
	for v := 0; v < g.NumNodes(); v++ {
		l := g.Label(graph.NodeID(v))
		if rng.Float64() < frac {
			l = unl
		}
		if _, err := b.AddLabeledNode(l); err != nil {
			return nil, err
		}
	}
	var addErr error
	g.Edges(func(u, v graph.NodeID) bool {
		if err := b.AddEdge(u, v); err != nil {
			addErr = err
			return false
		}
		return true
	})
	if addErr != nil {
		return nil, addErr
	}
	return b.Build()
}

// LabelRemovalCurves runs Figure 5 D-F for one dataset: Macro F1 per
// family as the fraction of removed node labels grows, at a fixed 90/10
// train/test protocol. Embedding scores are computed once (they are
// invariant to label removal) and replicated across the x-axis, exactly
// as the paper draws them. ctx cancels the embedding training phase.
func LabelRemovalCurves(ctx context.Context, g *graph.Graph, cfg LabelConfig) (map[string][]CurvePoint, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	sample, err := extractSample(ctx, g, cfg, rng)
	if err != nil {
		return nil, err
	}

	// Embedding baselines: fixed across removal fractions.
	embScores := make(map[string][]float64)
	splitAt := func(rep int) ([]int, []int, error) {
		splitRng := rand.New(rand.NewSource(cfg.Seed + int64(rep)*2017))
		return ml.StratifiedSplit(sample.y, 0.9, splitRng)
	}
	for rep := 0; rep < cfg.Repeats; rep++ {
		trainIdx, testIdx, err := splitAt(rep)
		if err != nil {
			return nil, err
		}
		for fam, rows := range sample.embParts {
			f1, err := evalSplit(rows, sample.y, trainIdx, testIdx, false, cfg.CGrid)
			if err != nil {
				return nil, err
			}
			embScores[fam] = append(embScores[fam], f1)
		}
	}

	out := make(map[string][]CurvePoint)
	for _, frac := range cfg.Removals {
		relabelled := g
		if frac > 0 {
			relabelled, err = relabelFraction(g, frac, rand.New(rand.NewSource(cfg.Seed+int64(frac*10000))))
			if err != nil {
				return nil, err
			}
		}
		dmax := 0
		if cfg.DmaxLevel > 0 && cfg.DmaxLevel < 1 {
			dmax = graph.DegreePercentile(relabelled, cfg.DmaxLevel)
		}
		ex, err := core.NewExtractor(relabelled, core.Options{
			MaxEdges:      cfg.MaxEdges,
			MaxDegree:     dmax,
			MaskRootLabel: true,
		})
		if err != nil {
			return nil, err
		}
		censuses := ex.CensusAll(sample.nodes, cfg.Workers)

		var scores []float64
		for rep := 0; rep < cfg.Repeats; rep++ {
			trainIdx, testIdx, err := splitAt(rep)
			if err != nil {
				return nil, err
			}
			sub := subgraphRows(censuses, trainIdx)
			f1, err := evalSplit(sub, sample.y, trainIdx, testIdx, true, cfg.CGrid)
			if err != nil {
				return nil, err
			}
			scores = append(scores, f1)
		}
		m, _ := ml.MeanStd(scores)
		out[FamSubgraph] = append(out[FamSubgraph], CurvePoint{X: frac, Mean: m, CI95: ml.ConfidenceInterval95(scores)})
		for fam, ss := range embScores {
			m, _ := ml.MeanStd(ss)
			out[fam] = append(out[fam], CurvePoint{X: frac, Mean: m, CI95: ml.ConfidenceInterval95(ss)})
		}
	}
	return out, nil
}

// DmaxSweep runs Table 2 for one dataset: Macro F1 of the subgraph
// features at each dmax percentile level, under a fixed 50/50 protocol
// averaged over cfg.Repeats resamples. Levels at 100% on large dense
// networks can be extremely slow — the exact effect the heuristic exists
// to avoid — so callers may cap levels.
func DmaxSweep(g *graph.Graph, cfg LabelConfig) ([]CurvePoint, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	nodes, y := sampleNodes(g, cfg.PerLabel, rng)
	var out []CurvePoint
	for _, level := range cfg.DmaxLevels {
		dmax := 0
		if level < 1 {
			dmax = graph.DegreePercentile(g, level)
		}
		ex, err := core.NewExtractor(g, core.Options{
			MaxEdges:      cfg.MaxEdges,
			MaxDegree:     dmax,
			MaskRootLabel: true,
		})
		if err != nil {
			return nil, err
		}
		censuses := ex.CensusAll(nodes, cfg.Workers)
		var scores []float64
		for rep := 0; rep < cfg.Repeats; rep++ {
			splitRng := rand.New(rand.NewSource(cfg.Seed + int64(rep)*3023))
			trainIdx, testIdx, err := ml.StratifiedSplit(y, 0.5, splitRng)
			if err != nil {
				return nil, err
			}
			sub := subgraphRows(censuses, trainIdx)
			f1, err := evalSplit(sub, y, trainIdx, testIdx, true, cfg.CGrid)
			if err != nil {
				return nil, err
			}
			scores = append(scores, f1)
		}
		m, _ := ml.MeanStd(scores)
		out = append(out, CurvePoint{X: level, Mean: m, CI95: ml.ConfidenceInterval95(scores)})
	}
	return out, nil
}

// EmaxSweep measures Macro F1 of the subgraph features as the subgraph
// edge budget grows — the §3.1 claim that "larger subgraphs serve as
// more discriminative features", traded against the roughly exponential
// census cost. Fixed 50/50 protocol averaged over cfg.Repeats resamples;
// the returned points carry emax in X and the census wall-clock share is
// reported by the corresponding benchmark.
func EmaxSweep(g *graph.Graph, cfg LabelConfig) ([]CurvePoint, error) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	nodes, y := sampleNodes(g, cfg.PerLabel, rng)
	dmax := 0
	if cfg.DmaxLevel > 0 && cfg.DmaxLevel < 1 {
		dmax = graph.DegreePercentile(g, cfg.DmaxLevel)
	}
	var out []CurvePoint
	for _, emax := range cfg.EmaxValues {
		ex, err := core.NewExtractor(g, core.Options{
			MaxEdges:      emax,
			MaxDegree:     dmax,
			MaskRootLabel: true,
		})
		if err != nil {
			return nil, err
		}
		censuses := ex.CensusAll(nodes, cfg.Workers)
		var scores []float64
		for rep := 0; rep < cfg.Repeats; rep++ {
			splitRng := rand.New(rand.NewSource(cfg.Seed + int64(rep)*4051))
			trainIdx, testIdx, err := ml.StratifiedSplit(y, 0.5, splitRng)
			if err != nil {
				return nil, err
			}
			sub := subgraphRows(censuses, trainIdx)
			f1, err := evalSplit(sub, y, trainIdx, testIdx, true, cfg.CGrid)
			if err != nil {
				return nil, err
			}
			scores = append(scores, f1)
		}
		m, _ := ml.MeanStd(scores)
		out = append(out, CurvePoint{X: float64(emax), Mean: m, CI95: ml.ConfidenceInterval95(scores)})
	}
	return out, nil
}
