package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"hsgf/internal/core"
	"hsgf/internal/datagen"
	"hsgf/internal/embed"
	"hsgf/internal/graph"
	"hsgf/internal/ml"
)

// Feature family identifiers used across the rank-prediction results.
const (
	FamClassic  = "classic"
	FamSubgraph = "subgraph"
	FamCombined = "combined"
	FamNode2Vec = "node2vec"
	FamDeepWalk = "DeepWalk"
	FamLINE     = "LINE"
)

// RankFamilies lists the feature families of Figure 3 in display order.
var RankFamilies = []string{FamClassic, FamSubgraph, FamCombined, FamNode2Vec, FamDeepWalk, FamLINE}

// Regressor identifiers used across the rank-prediction results.
const (
	RegLinear   = "LinRegr"
	RegTree     = "DecTree"
	RegForest   = "RanForest"
	RegBayRidge = "BayRidge"
)

// RankRegressors lists the regressors of Figure 3 / Table 1 in display
// order.
var RankRegressors = []string{RegLinear, RegTree, RegForest, RegBayRidge}

// RankConfig parameterises the rank-prediction experiment (Figure 3,
// Table 1, Figure 4).
type RankConfig struct {
	Publication datagen.PublicationConfig
	History     int // past years entering the classic relevance history

	MaxEdges int // subgraph emax; the paper uses 6 for this task

	// Embedding scale. The paper's settings (d=128, r=10, l=80, k=10)
	// are available via FullRankConfig; the default is reduced so the
	// full五-conference sweep stays in benchmark budgets.
	EmbedDim     int
	Walks        embed.WalkConfig
	SGNS         embed.SGNSConfig
	LINESamplesX int // LINE edge samples as a multiple of |E|

	ForestTrees int // 300 in the paper
	TopKSmall   int // univariate selection for LinRegr/DecTree (paper: 5)
	TopKRidge   int // univariate selection for BayRidge (paper: 60)

	NDCGAt  int // 20 in the paper
	Seed    int64
	Workers int

	// EmbedWorkers parallelises embedding training (walk sharding plus
	// Hogwild SGNS/LINE). 0 or 1 keeps the exact serial trainers, whose
	// output is bitwise-deterministic under Seed; >1 trades that for
	// multicore training (walk corpora stay deterministic regardless).
	EmbedWorkers int
}

// DefaultRankConfig returns a laptop-scale configuration that finishes
// the full sweep in minutes while preserving the comparison shape.
func DefaultRankConfig() RankConfig {
	pub := datagen.DefaultPublicationConfig()
	return RankConfig{
		Publication:  pub,
		History:      3,
		MaxEdges:     5,
		EmbedDim:     32,
		Walks:        embed.WalkConfig{WalksPerNode: 5, WalkLength: 20, ReturnP: 1, InOutQ: 1},
		SGNS:         embed.SGNSConfig{Dim: 32, Window: 5, Negatives: 5, Epochs: 1},
		LINESamplesX: 20,
		ForestTrees:  100,
		TopKSmall:    5,
		TopKRidge:    60,
		NDCGAt:       20,
		Seed:         7,
		Workers:      0,
	}
}

// FullRankConfig returns the paper's settings (§4.2.2): emax=6, d=128,
// r=10, l=80, k=10, 300 trees. Expect a long runtime.
func FullRankConfig() RankConfig {
	cfg := DefaultRankConfig()
	cfg.MaxEdges = 6
	cfg.EmbedDim = 128
	cfg.Walks = embed.DefaultWalkConfig()
	cfg.SGNS = embed.DefaultSGNSConfig()
	cfg.LINESamplesX = 100
	cfg.ForestTrees = 300
	return cfg
}

// RankResult holds everything the rank-prediction experiment measures.
type RankResult struct {
	Conferences []string
	// NDCG[family][regressor][conference] is the test-year NDCG@n.
	NDCG map[string]map[string]map[string]float64
	// TopSubgraphs[conference] lists the most important subgraph
	// features of the random-forest model (Figure 4), rendered in the
	// paper's compact encoding, with their importance scores.
	TopSubgraphs map[string][]SubgraphImportance
}

// SubgraphImportance is one decoded subgraph feature with its
// random-forest importance.
type SubgraphImportance struct {
	Encoding   string
	Importance float64
}

// Average returns the mean NDCG over conferences per (family, regressor)
// — Table 1.
func (r *RankResult) Average() map[string]map[string]float64 {
	out := make(map[string]map[string]float64)
	for fam, byReg := range r.NDCG {
		out[fam] = make(map[string]float64)
		for reg, byConf := range byReg {
			var s float64
			for _, v := range byConf {
				s += v
			}
			out[fam][reg] = s / float64(len(r.Conferences))
		}
	}
	return out
}

// RunRank executes the full rank-prediction experiment: generates the
// publication network, builds all six feature families for every
// institution, conference and year, trains the four regressors on the
// training years and reports test-year NDCG@n per combination, plus the
// random-forest subgraph feature importances. ctx cancels the embedding
// training loops inside the per-conference feature construction.
func RunRank(ctx context.Context, cfg RankConfig) (*RankResult, error) {
	pub, err := datagen.GeneratePublication(cfg.Publication)
	if err != nil {
		return nil, err
	}
	years := cfg.Publication.Years
	if len(years) < 3 {
		return nil, fmt.Errorf("experiments: rank prediction needs >= 3 years")
	}
	confs := cfg.Publication.Conferences

	res := &RankResult{
		Conferences:  confs,
		NDCG:         make(map[string]map[string]map[string]float64),
		TopSubgraphs: make(map[string][]SubgraphImportance),
	}
	for _, fam := range RankFamilies {
		res.NDCG[fam] = make(map[string]map[string]float64)
		for _, reg := range RankRegressors {
			res.NDCG[fam][reg] = make(map[string]float64)
		}
	}

	for _, conf := range confs {
		confData, err := buildConferenceData(ctx, pub, conf, cfg)
		if err != nil {
			return nil, err
		}
		for fam, mat := range confData.features {
			for _, reg := range RankRegressors {
				score, err := evalRegressor(reg, mat, confData, cfg)
				if err != nil {
					return nil, err
				}
				res.NDCG[fam][reg][conf] = score
			}
		}
		top, err := forestImportances(confData, cfg)
		if err != nil {
			return nil, err
		}
		res.TopSubgraphs[conf] = top
	}
	return res, nil
}

// conferenceData bundles the per-conference design matrices: one row per
// (institution, target year).
type conferenceData struct {
	features   map[string][][]float64 // family -> rows
	labels     []float64              // relevance at the row's target year
	trainIdx   []int
	testIdx    []int
	subgraphs  [][]float64 // subgraph family rows (for importance analysis)
	vocabulary *core.Vocabulary
	decode     func(key uint64) string
}

func buildConferenceData(ctx context.Context, pub *datagen.Publication, conf string, cfg RankConfig) (*conferenceData, error) {
	years := cfg.Publication.Years
	insts := pub.Institutions
	targetYears := years[1:]
	testYear := years[len(years)-1]

	nRows := len(insts) * len(targetYears)
	d := &conferenceData{features: make(map[string][][]float64)}
	d.labels = make([]float64, 0, nRows)

	classicRows := make([][]float64, 0, nRows)
	subgraphCensus := make([]*core.Census, 0, nRows)
	embedRows := map[string][][]float64{FamNode2Vec: nil, FamDeepWalk: nil, FamLINE: nil}

	// Per feature year (the year before each target year): censuses and
	// embeddings on the conference-year subnetwork.
	var extractors []*core.Extractor
	for _, target := range targetYears {
		featureYear := target - 1
		sub, instMap := pub.Subnetwork(conf, []int{featureYear})
		roots := make([]graph.NodeID, len(insts))
		present := make([]bool, len(insts))
		for i, inst := range insts {
			if v, ok := instMap[inst]; ok {
				roots[i] = v
				present[i] = true
			}
		}

		ex, err := core.NewExtractor(sub, core.Options{MaxEdges: cfg.MaxEdges})
		if err != nil {
			return nil, err
		}
		extractors = append(extractors, ex)
		var presentRoots []graph.NodeID
		var rowOf []int
		for i := range insts {
			if present[i] {
				presentRoots = append(presentRoots, roots[i])
				rowOf = append(rowOf, i)
			}
		}
		censuses := ex.CensusAll(presentRoots, cfg.Workers)
		perInst := make([]*core.Census, len(insts))
		for j, c := range censuses {
			perInst[rowOf[j]] = c
		}

		// Embeddings of the same subnetwork, one per method.
		embSeed := cfg.Seed + int64(target)*131
		wcfg := cfg.Walks
		wcfg.Workers = cfg.EmbedWorkers
		scfg := cfg.SGNS
		scfg.Dim = cfg.EmbedDim
		scfg.Workers = cfg.EmbedWorkers
		dw, err := embed.DeepWalk(ctx, sub, wcfg, scfg, rand.New(rand.NewSource(embSeed)))
		if err != nil {
			return nil, err
		}
		n2vW := wcfg
		n2vW.ReturnP, n2vW.InOutQ = 1, 1 // paper default p=q=1
		n2v, err := embed.Node2Vec(ctx, sub, n2vW, scfg, rand.New(rand.NewSource(embSeed+1)))
		if err != nil {
			return nil, err
		}
		lineCfg := embed.LINEConfig{Dim: cfg.EmbedDim / 2, Negatives: 5, Samples: cfg.LINESamplesX * sub.NumEdges(),
			Workers: cfg.EmbedWorkers}
		line, err := embed.LINE(ctx, sub, lineCfg, rand.New(rand.NewSource(embSeed+2)))
		if err != nil {
			return nil, err
		}

		classic := ClassicFeatures(pub, conf, target, cfg.History)
		rel := pub.Relevance(conf, target)
		for i, inst := range insts {
			classicRows = append(classicRows, classic[i])
			subgraphCensus = append(subgraphCensus, perInst[i])
			for fam, vecs := range map[string][][]float64{FamDeepWalk: dw, FamNode2Vec: n2v, FamLINE: line} {
				var vec []float64
				if present[i] {
					vec = vecs[roots[i]]
				} else {
					vec = make([]float64, len(vecs[0]))
				}
				embedRows[fam] = append(embedRows[fam], vec)
			}
			d.labels = append(d.labels, rel[inst])
			row := len(d.labels) - 1
			if target == testYear {
				d.testIdx = append(d.testIdx, row)
			} else {
				d.trainIdx = append(d.trainIdx, row)
			}
		}
	}

	// Subgraph vocabulary from training rows only; test rows project.
	vocab := core.NewVocabulary()
	for _, r := range d.trainIdx {
		if subgraphCensus[r] != nil {
			vocab.AddCensus(subgraphCensus[r])
		}
	}
	subRows := core.Matrix(subgraphCensus, vocab)
	d.subgraphs = subRows
	d.vocabulary = vocab
	d.decode = func(key uint64) string {
		for _, ex := range extractors {
			if _, ok := ex.Decode(key); ok {
				return ex.EncodingString(key)
			}
		}
		return fmt.Sprintf("?%x", key)
	}

	combined := make([][]float64, len(classicRows))
	for i := range combined {
		row := make([]float64, 0, len(classicRows[i])+len(subRows[i]))
		row = append(row, classicRows[i]...)
		row = append(row, subRows[i]...)
		combined[i] = row
	}

	d.features[FamClassic] = classicRows
	d.features[FamSubgraph] = subRows
	d.features[FamCombined] = combined
	d.features[FamNode2Vec] = embedRows[FamNode2Vec]
	d.features[FamDeepWalk] = embedRows[FamDeepWalk]
	d.features[FamLINE] = embedRows[FamLINE]
	return d, nil
}

// evalRegressor trains one regressor family on the training rows and
// returns the NDCG@n of the test-year ranking.
func evalRegressor(reg string, mat [][]float64, d *conferenceData, cfg RankConfig) (float64, error) {
	xtr := ml.Rows(mat, d.trainIdx)
	ytr := ml.Vals(d.labels, d.trainIdx)
	xte := ml.Rows(mat, d.testIdx)
	yte := ml.Vals(d.labels, d.testIdx)

	selectK := func(k int) ([][]float64, [][]float64, error) {
		s := ml.SelectKBest{K: k}
		if err := s.FitRegression(xtr, ytr); err != nil {
			return nil, nil, err
		}
		return s.Transform(xtr), s.Transform(xte), nil
	}

	var pred []float64
	switch reg {
	case RegLinear:
		xtrS, xteS, err := selectK(cfg.TopKSmall)
		if err != nil {
			return 0, err
		}
		var m ml.LinearRegression
		if err := m.Fit(xtrS, ytr); err != nil {
			return 0, err
		}
		pred = m.Predict(xteS)
	case RegTree:
		xtrS, xteS, err := selectK(cfg.TopKSmall)
		if err != nil {
			return 0, err
		}
		var m ml.DecisionTreeRegressor
		if err := m.Fit(xtrS, ytr); err != nil {
			return 0, err
		}
		pred = m.Predict(xteS)
	case RegForest:
		m := ml.RandomForestRegressor{NumTrees: cfg.ForestTrees, Seed: cfg.Seed, Workers: cfg.Workers}
		if err := m.Fit(xtr, ytr); err != nil {
			return 0, err
		}
		pred = m.Predict(xte)
	case RegBayRidge:
		xtrS, xteS, err := selectK(cfg.TopKRidge)
		if err != nil {
			return 0, err
		}
		var m ml.BayesianRidge
		if err := m.Fit(xtrS, ytr); err != nil {
			return 0, err
		}
		pred = m.Predict(xteS)
	default:
		return 0, fmt.Errorf("experiments: unknown regressor %q", reg)
	}
	return ml.NDCG(pred, yte, cfg.NDCGAt), nil
}

// forestImportances trains the random forest on the subgraph features and
// decodes the most important columns (Figure 4).
func forestImportances(d *conferenceData, cfg RankConfig) ([]SubgraphImportance, error) {
	xtr := ml.Rows(d.subgraphs, d.trainIdx)
	ytr := ml.Vals(d.labels, d.trainIdx)
	m := ml.RandomForestRegressor{NumTrees: cfg.ForestTrees, Seed: cfg.Seed, Workers: cfg.Workers}
	if err := m.Fit(xtr, ytr); err != nil {
		return nil, err
	}
	type col struct {
		idx int
		imp float64
	}
	cols := make([]col, len(m.Importance))
	for i, v := range m.Importance {
		cols[i] = col{i, v}
	}
	sort.Slice(cols, func(a, b int) bool { return cols[a].imp > cols[b].imp })
	k := 2 // the paper reports the two most discriminative subgraphs
	if k > len(cols) {
		k = len(cols)
	}
	out := make([]SubgraphImportance, 0, k)
	for _, c := range cols[:k] {
		out = append(out, SubgraphImportance{
			Encoding:   d.decode(d.vocabulary.Key(c.idx)),
			Importance: c.imp,
		})
	}
	return out, nil
}
