package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"

	"hsgf/internal/core"
	"hsgf/internal/datagen"
)

// benchServer builds the daemon over the synthetic publication network
// with the given row-cache size and returns (server, handler, request
// body for an 8-root batch).
func benchServer(tb testing.TB, rowCache int) (*Server, http.Handler, []byte) {
	tb.Helper()
	cfg := datagen.DefaultPublicationConfig()
	cfg.Institutions = 40
	cfg.Conferences = datagen.DefaultConferences[:3]
	cfg.Years = []int{2010, 2011, 2012, 2013}
	cfg.PapersPerConfYear = 25
	cfg.ExternalPapers = 400
	pub, err := datagen.GeneratePublication(cfg)
	if err != nil {
		tb.Fatal(err)
	}
	ex, err := core.NewExtractor(pub.Graph, core.Options{MaxEdges: 3, MaskRootLabel: true})
	if err != nil {
		tb.Fatal(err)
	}
	srv := NewServer(ex, Config{RowCache: rowCache})

	roots := make([]int64, 8)
	stride := pub.Graph.NumNodes() / len(roots)
	for i := range roots {
		roots[i] = int64(i * stride)
	}
	body, err := json.Marshal(FeaturesRequest{Roots: roots})
	if err != nil {
		tb.Fatal(err)
	}
	return srv, srv.Handler(), body
}

func doBench(tb testing.TB, handler http.Handler, body []byte) *httptest.ResponseRecorder {
	req := httptest.NewRequest(http.MethodPost, "/v1/features", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	handler.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		tb.Fatalf("request failed: %d %s", rec.Code, rec.Body)
	}
	return rec
}

// BenchmarkServeRequest measures the full daemon request path —
// admission, breaker, pooled extraction, flag mapping, JSON encoding —
// for a small batch of roots over the synthetic publication network,
// with the feature-row cache DISABLED so every iteration pays for
// extraction. This is the cold per-request cost a client of POST
// /v1/features pays; the allocation count is the tracked regression
// metric for the reuse-everything extraction discipline (a cold path
// rebuilds O(V+E) worker state per request and shows up here as
// thousands of allocs).
func BenchmarkServeRequest(b *testing.B) {
	srv, handler, body := benchServer(b, -1)

	// Warm the extractor's vocabulary and worker pool out of band.
	doBench(b, handler, body)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doBench(b, handler, body)
	}
	b.ReportMetric(float64(b.N*8)/b.Elapsed().Seconds(), "rows/sec")

	// Census roots on the graph used above may be slow under bench -race;
	// assert the daemon stayed healthy so a tripped breaker can't
	// silently skew timings.
	if got := srv.Breaker().State(); got != BreakerClosed {
		b.Fatalf("breaker ended %v, want closed", got)
	}
}

// BenchmarkServeRequestWarm measures the cache-hit fast path: the same
// 8-root batch over and over with the feature-row cache enabled, so
// after the first request every row is served from a preserialised
// fragment with no extraction, no admission, no breaker. This is the
// sub-100µs serve path the cache exists for.
func BenchmarkServeRequestWarm(b *testing.B) {
	_, handler, body := benchServer(b, 0) // 0 = DefaultRowCache

	// First request populates the cache; everything after is warm.
	doBench(b, handler, body)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		doBench(b, handler, body)
	}
	b.ReportMetric(float64(b.N*8)/b.Elapsed().Seconds(), "rows/sec")
}

// TestWarmServeAllocBudget pins the allocation budget of the warm fast
// path: a warm 8-root request must stay under 100 allocations end to
// end (handler dispatch, cache lookups, fragment assembly, recorder
// writes included). Run by `make bench-smoke`; a regression here means
// per-request garbage crept back into the hit path.
func TestWarmServeAllocBudget(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation skews allocation accounting")
	}
	_, handler, body := benchServer(t, 0)
	doBench(t, handler, body) // populate the cache

	const rounds = 50
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < rounds; i++ {
		doBench(t, handler, body)
	}
	runtime.ReadMemStats(&after)
	perReq := float64(after.Mallocs-before.Mallocs) / rounds
	t.Logf("warm 8-root request: %.1f allocs", perReq)
	if perReq > 100 {
		t.Fatalf("warm 8-root request allocates %.1f objects, budget is 100", perReq)
	}
}
