package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"hsgf/internal/core"
	"hsgf/internal/datagen"
)

// BenchmarkServeRequest measures the full daemon request path —
// admission, breaker, pooled extraction, flag mapping, JSON encoding —
// for a small batch of roots over the synthetic publication network.
// This is the per-request cost a client of POST /v1/features pays; the
// allocation count is the tracked regression metric for the
// reuse-everything extraction discipline (a cold path rebuilds O(V+E)
// worker state per request and shows up here as thousands of allocs).
func BenchmarkServeRequest(b *testing.B) {
	cfg := datagen.DefaultPublicationConfig()
	cfg.Institutions = 40
	cfg.Conferences = datagen.DefaultConferences[:3]
	cfg.Years = []int{2010, 2011, 2012, 2013}
	cfg.PapersPerConfYear = 25
	cfg.ExternalPapers = 400
	pub, err := datagen.GeneratePublication(cfg)
	if err != nil {
		b.Fatal(err)
	}
	ex, err := core.NewExtractor(pub.Graph, core.Options{MaxEdges: 3, MaskRootLabel: true})
	if err != nil {
		b.Fatal(err)
	}
	srv := NewServer(ex, Config{})
	handler := srv.Handler()

	roots := make([]int64, 8)
	stride := pub.Graph.NumNodes() / len(roots)
	for i := range roots {
		roots[i] = int64(i * stride)
	}
	body, err := json.Marshal(FeaturesRequest{Roots: roots})
	if err != nil {
		b.Fatal(err)
	}

	do := func() *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, "/v1/features", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		handler.ServeHTTP(rec, req)
		return rec
	}
	// Warm the extractor's vocabulary and worker pool out of band.
	if rec := do(); rec.Code != http.StatusOK {
		b.Fatalf("warmup request failed: %d %s", rec.Code, rec.Body)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if rec := do(); rec.Code != http.StatusOK {
			b.Fatalf("request %d failed: %d %s", i, rec.Code, rec.Body)
		}
	}
	b.ReportMetric(float64(b.N*len(roots))/b.Elapsed().Seconds(), "rows/sec")

	// Census roots on the graph used above may be slow under bench -race;
	// assert the daemon stayed healthy so a tripped breaker can't
	// silently skew timings.
	if got := srv.Breaker().State(); got != BreakerClosed {
		b.Fatalf("breaker ended %v, want closed", got)
	}
}
