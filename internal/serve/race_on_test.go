//go:build race

package serve

// raceEnabled reports whether the race detector is active; allocation
// accounting is skewed by its instrumentation, so alloc-budget
// assertions skip themselves under -race.
const raceEnabled = true
