package serve

import (
	"context"
	"net/http"
	"testing"
	"time"

	"hsgf/internal/core"
	"hsgf/internal/graph"
	"hsgf/internal/ingest"
	"hsgf/internal/store"
)

// ingestSeed is a small fixed graph: loc-org-act path plus a spur, so
// mutations have non-trivial dirty balls.
func ingestSeed(t testing.TB) *graph.Graph {
	t.Helper()
	b := graph.NewBuilderWithAlphabet(graph.MustAlphabet("loc", "org", "act"))
	for _, l := range []graph.Label{0, 1, 2, 0, 1} {
		if _, err := b.AddLabeledNode(l); err != nil {
			t.Fatal(err)
		}
	}
	for _, e := range [][2]graph.NodeID{{0, 1}, {1, 2}, {2, 3}, {3, 4}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	return b.MustBuild()
}

// newIngestServer builds a server wired to a live ingest engine over a
// temp store.
func newIngestServer(t testing.TB, cfg Config) (*Server, *ingest.Engine) {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := ingest.Open(ingest.Config{Store: st, Opts: core.Options{MaxEdges: 2}},
		func() (*graph.Graph, error) { return ingestSeed(t), nil })
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	_, ex, fs, gen, _ := eng.State()
	s := NewServerSnapshot(&Snapshot{Extractor: ex, Features: fs, Generation: gen, Source: "ingest"}, cfg)
	s.SetIngestor(eng, "ingest")
	return s, eng
}

// TestIngestApplyServesFresh proves the acked-means-serving contract:
// once POST /v1/ingest returns 200, the mutated graph is what /v1/meta
// and the serving snapshot expose, with a new fingerprint.
func TestIngestApplyServesFresh(t *testing.T) {
	s, _ := newIngestServer(t, Config{})
	var before MetaResponse
	doJSON(t, s, http.MethodGet, "/v1/meta", "", &before)
	if before.Ingest == nil || !before.Ingest.Enabled {
		t.Fatal("meta is missing the ingest block on an ingest-enabled daemon")
	}

	var res IngestResponse
	w := doJSON(t, s, http.MethodPost, "/v1/ingest",
		`{"batch_id":"b1","mutations":[{"op":"add_node","label":"act"},{"op":"add_edge","u":4,"v":5}]}`, &res)
	if w.Code != http.StatusOK {
		t.Fatalf("ingest: status %d, body %s", w.Code, w.Body.String())
	}
	if res.Seq != 1 || res.Replayed || res.DirtyRoots == 0 || res.Fingerprint == "" {
		t.Fatalf("ingest response = %+v", res)
	}

	var after MetaResponse
	doJSON(t, s, http.MethodGet, "/v1/meta", "", &after)
	if after.Nodes != before.Nodes+1 || after.Edges != before.Edges+1 {
		t.Fatalf("meta after ingest: %d nodes / %d edges, want %d / %d",
			after.Nodes, after.Edges, before.Nodes+1, before.Edges+1)
	}
	if after.Fingerprint == before.Fingerprint {
		t.Fatal("fingerprint did not change although the graph shape did")
	}
	if after.Fingerprint != res.Fingerprint {
		t.Fatalf("meta fingerprint %s != ingest ack fingerprint %s", after.Fingerprint, res.Fingerprint)
	}
	if after.Ingest.LastSeq != 1 {
		t.Fatalf("freshness watermark last_seq = %d, want 1", after.Ingest.LastSeq)
	}
	if after.FeatureSetRows != after.Nodes {
		t.Fatalf("feature set has %d rows for %d nodes", after.FeatureSetRows, after.Nodes)
	}
}

// TestIngestReplayAcknowledged proves the idempotency contract over
// HTTP: re-sending a batch ID acks with the original sequence and
// replayed=true, and does not mutate state again.
func TestIngestReplayAcknowledged(t *testing.T) {
	s, _ := newIngestServer(t, Config{})
	const body = `{"batch_id":"retry-me","mutations":[{"op":"add_edge","u":0,"v":2}]}`
	var first, second IngestResponse
	if w := doJSON(t, s, http.MethodPost, "/v1/ingest", body, &first); w.Code != http.StatusOK {
		t.Fatalf("first send: status %d, body %s", w.Code, w.Body.String())
	}
	var mid MetaResponse
	doJSON(t, s, http.MethodGet, "/v1/meta", "", &mid)
	if w := doJSON(t, s, http.MethodPost, "/v1/ingest", body, &second); w.Code != http.StatusOK {
		t.Fatalf("replay: status %d, body %s", w.Code, w.Body.String())
	}
	if !second.Replayed || second.Seq != first.Seq {
		t.Fatalf("replay ack = %+v, want replayed with seq %d", second, first.Seq)
	}
	var after MetaResponse
	doJSON(t, s, http.MethodGet, "/v1/meta", "", &after)
	if after.Edges != mid.Edges {
		t.Fatalf("replay re-applied the batch: %d edges, want %d", after.Edges, mid.Edges)
	}
}

// TestIngestBadRequests pins the 400 taxonomy: malformed JSON, unknown
// op, empty batch, missing batch ID, and a semantically invalid batch
// (self loop) all fail fast with machine-readable reasons, and none of
// them advance the watermark.
func TestIngestBadRequests(t *testing.T) {
	s, eng := newIngestServer(t, Config{})
	cases := []struct {
		name, body, reason string
	}{
		{"malformed json", `{"batch_id":`, "bad_request"},
		{"unknown field", `{"batch_id":"x","mutations":[],"extra":1}`, "bad_request"},
		{"missing batch id", `{"mutations":[{"op":"add_edge","u":0,"v":2}]}`, "bad_request"},
		{"empty batch", `{"batch_id":"x","mutations":[]}`, "bad_request"},
		{"unknown op", `{"batch_id":"x","mutations":[{"op":"upsert_edge","u":0,"v":2}]}`, "bad_mutation"},
		{"self loop", `{"batch_id":"x","mutations":[{"op":"add_edge","u":1,"v":1}]}`, "bad_mutation"},
		{"duplicate edge", `{"batch_id":"x","mutations":[{"op":"add_edge","u":0,"v":1}]}`, "bad_mutation"},
		{"unknown label", `{"batch_id":"x","mutations":[{"op":"add_node","label":"nope"}]}`, "bad_mutation"},
		// These int64 IDs would wrap into the VALID mutation 0-2 (resp.
		// 2-4) under int32 truncation, silently mutating the wrong nodes;
		// the handler must reject them before conversion.
		{"u beyond int32", `{"batch_id":"x","mutations":[{"op":"add_edge","u":4294967296,"v":2}]}`, "bad_mutation"},
		{"negative v wraps", `{"batch_id":"x","mutations":[{"op":"add_edge","u":2,"v":-4294967292}]}`, "bad_mutation"},
	}
	for _, tc := range cases {
		var body errorBody
		w := doJSON(t, s, http.MethodPost, "/v1/ingest", tc.body, &body)
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (body %s)", tc.name, w.Code, w.Body.String())
		}
		if body.Reason != tc.reason {
			t.Errorf("%s: reason %q, want %q", tc.name, body.Reason, tc.reason)
		}
	}
	if seq := eng.Stats().LastSeq; seq != 0 {
		t.Fatalf("rejected batches advanced the watermark to %d", seq)
	}
	// The rejected batch IDs were never recorded: "x" is still usable.
	var res IngestResponse
	if w := doJSON(t, s, http.MethodPost, "/v1/ingest",
		`{"batch_id":"x","mutations":[{"op":"add_edge","u":0,"v":2}]}`, &res); w.Code != http.StatusOK {
		t.Fatalf("batch id of a rejected batch is burned: status %d", w.Code)
	}
}

// TestIngestWithoutEngine501 pins the no-engine contract: a daemon
// started without streaming ingest answers POST /v1/ingest with 501 and
// a machine-readable reason, mirroring reload_unsupported.
func TestIngestWithoutEngine501(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	var body errorBody
	w := doJSON(t, s, http.MethodPost, "/v1/ingest",
		`{"batch_id":"x","mutations":[{"op":"add_edge","u":0,"v":2}]}`, &body)
	if w.Code != http.StatusNotImplemented {
		t.Fatalf("status %d, want 501", w.Code)
	}
	if body.Reason != "ingest_unsupported" {
		t.Fatalf("reason %q, want ingest_unsupported", body.Reason)
	}
	// And the observability surfaces omit the ingest block entirely.
	var meta MetaResponse
	doJSON(t, s, http.MethodGet, "/v1/meta", "", &meta)
	if meta.Ingest != nil {
		t.Fatal("meta carries an ingest block on a daemon without ingest")
	}
	var stats StatsSnapshot
	doJSON(t, s, http.MethodGet, "/debug/stats", "", &stats)
	if stats.Ingest != nil {
		t.Fatal("stats carry an ingest block on a daemon without ingest")
	}
}

// TestIngestSheds429 saturates the single-writer admission gate and
// checks arrivals beyond the bounded queue get 429 + Retry-After while
// the queued writer still completes once the slot frees.
func TestIngestSheds429(t *testing.T) {
	s, _ := newIngestServer(t, Config{MaxQueue: 1, RetryAfter: 2 * time.Second})

	// Occupy the only ingest slot directly (in-package test privilege).
	release, err := s.ingestAdm.acquire(context.Background(), nil)
	if err != nil {
		t.Fatal(err)
	}

	// One writer fits in the queue and blocks...
	queuedDone := make(chan *IngestResponse, 1)
	go func() {
		var res IngestResponse
		doJSON(t, s, http.MethodPost, "/v1/ingest",
			`{"batch_id":"queued","mutations":[{"op":"add_edge","u":0,"v":2}]}`, &res)
		queuedDone <- &res
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.ingestAdm.queued() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("writer never entered the ingest queue")
		}
		time.Sleep(time.Millisecond)
	}

	// ...and the next arrival is shed with a backoff hint.
	var body errorBody
	w := doJSON(t, s, http.MethodPost, "/v1/ingest",
		`{"batch_id":"shed","mutations":[{"op":"add_edge","u":0,"v":3}]}`, &body)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 (body %s)", w.Code, w.Body.String())
	}
	if body.Reason != "shed" || w.Header().Get("Retry-After") == "" {
		t.Fatalf("shed response missing reason/backoff: reason %q, Retry-After %q",
			body.Reason, w.Header().Get("Retry-After"))
	}

	release()
	select {
	case res := <-queuedDone:
		if res.Seq != 1 {
			t.Fatalf("queued writer got seq %d, want 1", res.Seq)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued writer never completed after the slot freed")
	}
}

// TestIngestDraining503 checks ingest participates in graceful drain.
func TestIngestDraining503(t *testing.T) {
	s, _ := newIngestServer(t, Config{})
	s.draining.Store(true)
	var body errorBody
	w := doJSON(t, s, http.MethodPost, "/v1/ingest",
		`{"batch_id":"x","mutations":[{"op":"add_edge","u":0,"v":2}]}`, &body)
	if w.Code != http.StatusServiceUnavailable || body.Reason != "draining" {
		t.Fatalf("status %d reason %q, want 503 draining", w.Code, body.Reason)
	}
}

// TestIngestObservability checks the freshness watermark rides along on
// /debug/stats and /readyz once batches flow.
func TestIngestObservability(t *testing.T) {
	s, _ := newIngestServer(t, Config{})
	for i, b := range []string{"a", "b"} {
		var res IngestResponse
		body := `{"batch_id":"` + b + `","mutations":[{"op":"relabel","u":0,"label":"org"}]}`
		if i == 1 {
			body = `{"batch_id":"b","mutations":[{"op":"relabel","u":0,"label":"loc"}]}`
		}
		if w := doJSON(t, s, http.MethodPost, "/v1/ingest", body, &res); w.Code != http.StatusOK {
			t.Fatalf("batch %s: status %d, body %s", b, w.Code, w.Body.String())
		}
	}
	var stats StatsSnapshot
	doJSON(t, s, http.MethodGet, "/debug/stats", "", &stats)
	if stats.Ingest == nil || !stats.Ingest.Enabled {
		t.Fatal("stats missing ingest block")
	}
	if stats.Ingest.LastSeq != 2 || stats.Ingest.Applied != 2 {
		t.Fatalf("ingest stats = %+v, want last_seq 2 applied 2", stats.Ingest)
	}
	if stats.Ingest.WALBytes == 0 {
		t.Fatal("wal_bytes = 0 after two durable batches")
	}
	var ready struct {
		Status string        `json:"status"`
		Ingest *IngestStatus `json:"ingest"`
	}
	w := doJSON(t, s, http.MethodGet, "/readyz", "", &ready)
	if w.Code != http.StatusOK || ready.Ingest == nil || ready.Ingest.LastSeq != 2 {
		t.Fatalf("readyz = %d %+v, want 200 with ingest watermark 2", w.Code, ready)
	}
}
