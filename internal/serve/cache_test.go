package serve

import (
	"context"
	"fmt"
	"net/http"
	"regexp"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hsgf/internal/core"
	"hsgf/internal/graph"
)

// --- rowCache unit tests ------------------------------------------------

func TestRowCacheLRUEviction(t *testing.T) {
	c := newRowCache(cacheShardCount) // one row per shard
	// Same root, different budgets: all three keys land in one shard, so
	// the per-shard bound of 1 forces eviction in LRU order.
	k := func(budget int64) rowKey { return rowKey{root: 7, budget: budget} }
	c.put(k(1), 1, rowResult{frag: []byte(`1`)})
	c.put(k(2), 1, rowResult{frag: []byte(`2`)})
	if _, ok := c.get(k(1), 1); ok {
		t.Error("oldest entry survived past the shard bound")
	}
	if res, ok := c.get(k(2), 1); !ok || string(res.frag) != `2` {
		t.Errorf("newest entry lost: %v %q", ok, res.frag)
	}
	if got := c.evicted.Load(); got != 1 {
		t.Errorf("evicted = %d, want 1", got)
	}
}

func TestRowCacheEpochInvalidation(t *testing.T) {
	c := newRowCache(0)
	key := rowKey{root: 3, budget: 10}
	c.put(key, 1, rowResult{frag: []byte(`x`)})
	if _, ok := c.get(key, 1); !ok {
		t.Fatal("fresh entry missed")
	}
	// A lookup from a newer epoch drops the entry on sight...
	if _, ok := c.get(key, 2); ok {
		t.Fatal("stale-epoch entry served")
	}
	// ...permanently: even the original epoch can no longer see it.
	if _, ok := c.get(key, 1); ok {
		t.Fatal("stale entry resurrected")
	}
	if got := c.size(); got != 0 {
		t.Errorf("size = %d after invalidation, want 0", got)
	}
}

func TestRowCacheJoinFulfillShare(t *testing.T) {
	c := newRowCache(0)
	key := rowKey{root: 1}

	_, hit, f, leader := c.join(key, 1)
	if hit || !leader || f == nil {
		t.Fatalf("first join: hit=%v leader=%v", hit, leader)
	}
	_, hit2, f2, leader2 := c.join(key, 1)
	if hit2 || leader2 || f2 != f {
		t.Fatalf("second join must follow the same flight: hit=%v leader=%v same=%v", hit2, leader2, f2 == f)
	}
	// A join under a different epoch must NOT coalesce onto a flight
	// computing against another snapshot.
	_, _, f3, leader3 := c.join(key, 2)
	if !leader3 || f3 == f {
		t.Fatal("cross-epoch join coalesced onto a stale flight")
	}

	want := rowResult{frag: []byte(`row`), degraded: false}
	c.fulfill(key, f, want, true)
	select {
	case <-f.done:
	default:
		t.Fatal("fulfill did not close done")
	}
	if !f.shared || string(f.res.frag) != `row` {
		t.Fatalf("flight result = shared=%v %q", f.shared, f.res.frag)
	}
	// Deterministic results are cached by fulfill; cross-epoch flights
	// don't see them (epoch 2 lookup drops the epoch-1 entry).
	if res, hit, _, _ := c.join(key, 1); !hit || string(res.frag) != `row` {
		t.Fatalf("post-fulfill join: hit=%v %q", hit, res.frag)
	}
}

func TestRowCacheAbandonWakesFollowers(t *testing.T) {
	c := newRowCache(0)
	key := rowKey{root: 2}
	_, _, f, leader := c.join(key, 1)
	if !leader {
		t.Fatal("expected leadership")
	}
	c.abandon(key, f)
	select {
	case <-f.done:
	default:
		t.Fatal("abandon did not close done")
	}
	if f.shared {
		t.Fatal("abandoned flight marked shareable")
	}
	// The flight is deregistered: the next join starts a fresh one.
	if _, hit, f2, leader2 := c.join(key, 1); hit || !leader2 || f2 == f {
		t.Fatal("abandoned flight not deregistered")
	}
}

// --- differential: cached vs uncached bytes -----------------------------

var elapsedRE = regexp.MustCompile(`"elapsed_ms":\d+`)

// normalizeElapsed zeroes the one nondeterministic field of a features
// response so bodies can be compared byte for byte.
func normalizeElapsed(body string) string {
	return elapsedRE.ReplaceAllString(body, `"elapsed_ms":0`)
}

// TestCachedResponseByteIdentical pins the zero-copy contract: a
// response assembled from cached fragments is byte-identical (modulo
// elapsed_ms) to the cold response that populated the cache AND to a
// cache-disabled server over the same extractor — complete rows and
// deterministic budget-truncated rows alike.
func TestCachedResponseByteIdentical(t *testing.T) {
	ex, err := core.NewExtractor(testGraph(t, 30), core.Options{MaxEdges: 3})
	if err != nil {
		t.Fatal(err)
	}
	cached := NewServer(ex, Config{})
	uncached := NewServer(ex, Config{RowCache: -1})

	for _, body := range []string{
		`{"roots":[0,5,9,0]}`,             // duplicates included
		`{"roots":[1,2],"root_budget":1}`, // deterministic truncation
	} {
		cold := doJSON(t, cached, http.MethodPost, "/v1/features", body, nil)
		warm := doJSON(t, cached, http.MethodPost, "/v1/features", body, nil)
		plain := doJSON(t, uncached, http.MethodPost, "/v1/features", body, nil)
		if cold.Code != 200 || warm.Code != 200 || plain.Code != 200 {
			t.Fatalf("%s: codes %d/%d/%d", body, cold.Code, warm.Code, plain.Code)
		}
		c, w, p := normalizeElapsed(cold.Body.String()), normalizeElapsed(warm.Body.String()), normalizeElapsed(plain.Body.String())
		if c != w {
			t.Errorf("%s: warm response differs from cold:\ncold: %s\nwarm: %s", body, c, w)
		}
		if c != p {
			t.Errorf("%s: cached server differs from uncached:\ncached:   %s\nuncached: %s", body, c, p)
		}
	}

	var stats StatsSnapshot
	doJSON(t, cached, http.MethodGet, "/debug/stats", "", &stats)
	if stats.Cache == nil || !stats.Cache.Enabled {
		t.Fatal("/debug/stats missing the cache block")
	}
	// Second pass of each body served every row from cache (duplicates
	// hit within one request as well).
	if stats.Cache.Hits < 6 || stats.Cache.Misses == 0 {
		t.Errorf("cache counters = %+v, want >=6 hits and >0 misses", stats.Cache)
	}
	var snapUn StatsSnapshot
	doJSON(t, uncached, http.MethodGet, "/debug/stats", "", &snapUn)
	if snapUn.Cache != nil {
		t.Error("cache block present on a cache-disabled server")
	}
}

// TestNondeterministicRowsNeverCached: a row flagged by a per-root
// deadline depends on scheduling, so serving it twice must recompute it
// rather than replay the first truncation.
func TestNondeterministicRowsNeverCached(t *testing.T) {
	s, ex := newTestServer(t, Config{})
	block := make(chan struct{})
	var once sync.Once
	ex.SetFaultHooks(&core.FaultHooks{OnStep: func(root graph.NodeID, step uint64) {
		once.Do(func() { <-block })
	}})
	defer ex.SetFaultHooks(nil)

	var resp FeaturesResponse
	go func() { time.Sleep(50 * time.Millisecond); close(block) }()
	doJSON(t, s, http.MethodPost, "/v1/features", `{"roots":[0],"root_deadline_ms":1}`, &resp)
	if !resp.Degraded {
		t.Skip("root finished inside the deadline despite the stall; nothing to assert")
	}
	if got := s.cache.size(); got != 0 {
		t.Fatalf("deadline-truncated row was cached (%d entries)", got)
	}
}

// --- cache interplay with the serving gates -----------------------------

// TestCacheHitsServeWhileBreakerOpen: a full-cache-hit request performs
// no extraction, so it must keep serving while the breaker sheds the
// miss path.
func TestCacheHitsServeWhileBreakerOpen(t *testing.T) {
	s, _ := newTestServer(t, Config{Breaker: BreakerConfig{Window: 2, MinSamples: 1, TripRatio: 0.5, Cooldown: time.Hour}})
	if w := doJSON(t, s, http.MethodPost, "/v1/features", `{"roots":[0,1]}`, nil); w.Code != http.StatusOK {
		t.Fatalf("warming request = %d", w.Code)
	}

	done, ok := s.Breaker().Acquire()
	if !ok {
		t.Fatal("closed breaker refused")
	}
	done(true)
	if s.Breaker().State() != BreakerOpen {
		t.Fatal("breaker not open")
	}

	if w := doJSON(t, s, http.MethodPost, "/v1/features", `{"roots":[0,1]}`, nil); w.Code != http.StatusOK {
		t.Errorf("cached request with open breaker = %d, want 200", w.Code)
	}
	// Any miss still goes through the gate chain and is rejected.
	w := doJSON(t, s, http.MethodPost, "/v1/features", `{"roots":[2]}`, nil)
	if w.Code != http.StatusServiceUnavailable || errorCode(t, w) != "breaker_open" {
		t.Errorf("miss with open breaker = %d %q, want 503 breaker_open", w.Code, errorCode(t, w))
	}
}

// TestRequestCoalescing: N concurrent requests for the same cold
// (epoch, root, limits) perform exactly one extraction; followers share
// the leader's preserialised fragment and the responses are
// byte-identical.
func TestRequestCoalescing(t *testing.T) {
	s, ex := newTestServer(t, Config{})
	const root = graph.NodeID(5)
	gate := make(chan struct{})
	started := make(chan struct{})
	var once sync.Once
	var extractions atomic.Int64
	ex.SetFaultHooks(&core.FaultHooks{OnRootStart: func(r graph.NodeID) {
		if r == root {
			extractions.Add(1)
			once.Do(func() { close(started) })
			<-gate
		}
	}})
	defer ex.SetFaultHooks(nil)

	bodies := make([]string, 3)
	var wg sync.WaitGroup
	for i := range bodies {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := doJSON(t, s, http.MethodPost, "/v1/features", `{"roots":[5]}`, nil)
			if w.Code != http.StatusOK {
				t.Errorf("request %d: status %d: %s", i, w.Code, w.Body.String())
				return
			}
			bodies[i] = normalizeElapsed(w.Body.String())
		}(i)
		if i == 0 {
			<-started // the leader's flight is registered before extraction
		}
	}
	// Wait until the followers are admitted (3 slots held), give them a
	// beat to park on the flight, then let the leader finish.
	for s.adm.inFlight() < 3 {
		time.Sleep(time.Millisecond)
	}
	time.Sleep(100 * time.Millisecond)
	close(gate)
	wg.Wait()

	if got := extractions.Load(); got != 1 {
		t.Errorf("root extracted %d times across 3 concurrent requests, want 1", got)
	}
	if bodies[0] == "" || bodies[0] != bodies[1] || bodies[0] != bodies[2] {
		t.Errorf("coalesced responses differ:\n%s\n%s\n%s", bodies[0], bodies[1], bodies[2])
	}
	shared := s.cache.coalesced.Load() + s.cache.hits.Load()
	if shared < 2 {
		t.Errorf("coalesced+hits = %d, want >= 2 (both followers shared the leader's row)", shared)
	}
}

// --- invalidation across reload and ingest publish ----------------------

// TestReloadInvalidatesCache: rows cached against the old generation
// must never be served after a hot reload swaps the snapshot.
func TestReloadInvalidatesCache(t *testing.T) {
	s, exA, exB := reloadableServer(t, Config{})
	var before FeaturesResponse
	doJSON(t, s, http.MethodPost, "/v1/features", `{"roots":[0,1]}`, &before)
	doJSON(t, s, http.MethodPost, "/v1/features", `{"roots":[0,1]}`, nil) // cache hit
	epochBefore := s.epoch.Load()

	if w := doJSON(t, s, http.MethodPost, "/v1/admin/reload", "", nil); w.Code != http.StatusOK {
		t.Fatalf("reload = %d", w.Code)
	}
	if got := s.epoch.Load(); got != epochBefore+1 {
		t.Fatalf("epoch %d after reload, want %d", got, epochBefore+1)
	}

	var after FeaturesResponse
	doJSON(t, s, http.MethodPost, "/v1/features", `{"roots":[0,1]}`, &after)
	if after.Fingerprint != fingerprint(exB) {
		t.Fatalf("post-reload fingerprint %s, want %s", after.Fingerprint, fingerprint(exB))
	}
	for i, row := range after.Rows {
		if want := exB.Census(graph.NodeID(row.Root)).Subgraphs; row.Subgraphs != want {
			t.Errorf("row %d: %d subgraphs, new generation computes %d (stale cached row?)", i, row.Subgraphs, want)
		}
	}
	if before.Fingerprint != fingerprint(exA) {
		t.Errorf("pre-reload fingerprint %s, want %s", before.Fingerprint, fingerprint(exA))
	}
}

// TestIngestPublishInvalidatesCache: once POST /v1/ingest acks, cached
// rows from the pre-mutation snapshot must be gone — acked-means-serving
// extends to the cache.
func TestIngestPublishInvalidatesCache(t *testing.T) {
	s, eng := newIngestServer(t, Config{})
	var before FeaturesResponse
	doJSON(t, s, http.MethodPost, "/v1/features", `{"roots":[0,1,2,3,4]}`, &before)

	w := doJSON(t, s, http.MethodPost, "/v1/ingest",
		`{"batch_id":"c1","mutations":[{"op":"add_edge","u":0,"v":2}]}`, nil)
	if w.Code != http.StatusOK {
		t.Fatalf("ingest = %d: %s", w.Code, w.Body.String())
	}

	var after FeaturesResponse
	doJSON(t, s, http.MethodPost, "/v1/features", `{"roots":[0,1,2,3,4]}`, &after)
	if after.Fingerprint == before.Fingerprint {
		t.Fatal("fingerprint unchanged although the graph shape changed")
	}
	_, ex, _, _, _ := eng.State()
	for i, row := range after.Rows {
		if want := ex.Census(graph.NodeID(row.Root)).Subgraphs; row.Subgraphs != want {
			t.Errorf("row %d: %d subgraphs, post-ingest extractor computes %d (stale cached row?)", i, row.Subgraphs, want)
		}
	}
}

// TestIngestReplayKeepsCache: a duplicate-replay ack republishes state
// the server already serves; the publish hook must recognise it by
// pointer identity and keep the epoch — and with it every cached row —
// intact.
func TestIngestReplayKeepsCache(t *testing.T) {
	s, _ := newIngestServer(t, Config{})
	const batch = `{"batch_id":"r1","mutations":[{"op":"add_edge","u":1,"v":3}]}`
	if w := doJSON(t, s, http.MethodPost, "/v1/ingest", batch, nil); w.Code != http.StatusOK {
		t.Fatalf("ingest = %d", w.Code)
	}
	doJSON(t, s, http.MethodPost, "/v1/features", `{"roots":[0,1]}`, nil)
	epochBefore := s.epoch.Load()
	hitsBefore := s.cache.hits.Load()

	var replay IngestResponse
	if w := doJSON(t, s, http.MethodPost, "/v1/ingest", batch, &replay); w.Code != http.StatusOK || !replay.Replayed {
		t.Fatalf("replay = %d %+v", w.Code, replay)
	}
	if got := s.epoch.Load(); got != epochBefore {
		t.Fatalf("replay advanced the epoch %d -> %d and flushed the cache", epochBefore, got)
	}
	doJSON(t, s, http.MethodPost, "/v1/features", `{"roots":[0,1]}`, nil)
	if got := s.cache.hits.Load(); got != hitsBefore+2 {
		t.Errorf("hits %d -> %d across a replay, want +2 (cache survived)", hitsBefore, got)
	}
}

// --- stale rows under concurrent load (-race) ---------------------------

// TestCacheReloadUnderLoadNoStaleRows hammers /v1/features while
// reloads continuously swap between two generations, with the row cache
// enabled. Every response must be row-for-row consistent with the
// generation its fingerprint names — a cached row from the other
// generation leaking in is the failure this test exists to catch.
func TestCacheReloadUnderLoadNoStaleRows(t *testing.T) {
	baseline := runtime.NumGoroutine()
	s, exA, exB := reloadableServer(t, Config{MaxInFlight: 8, MaxQueue: 1024})

	// Oracle: per generation, the expected subgraph count of every root
	// the clients request. Computed before the load starts.
	oracle := map[string][]int64{fingerprint(exA): make([]int64, 20), fingerprint(exB): make([]int64, 20)}
	for r := 0; r < 20; r++ {
		oracle[fingerprint(exA)][r] = exA.Census(graph.NodeID(r)).Subgraphs
		oracle[fingerprint(exB)][r] = exB.Census(graph.NodeID(r)).Subgraphs
	}

	const (
		clients   = 8
		perClient = 40
	)
	var (
		failed  atomic.Int64
		stopRel = make(chan struct{})
		relWG   sync.WaitGroup
	)
	relWG.Add(1)
	go func() {
		defer relWG.Done()
		for {
			select {
			case <-stopRel:
				return
			default:
			}
			s.Reload(context.Background())
		}
	}()

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				var resp FeaturesResponse
				body := fmt.Sprintf(`{"roots":[%d,%d,%d]}`, i%20, (i+3)%20, (i+7)%20)
				w := doJSON(t, s, http.MethodPost, "/v1/features", body, &resp)
				if w.Code != http.StatusOK {
					failed.Add(1)
					t.Errorf("client %d req %d: status %d", c, i, w.Code)
					continue
				}
				want, ok := oracle[resp.Fingerprint]
				if !ok {
					failed.Add(1)
					t.Errorf("client %d req %d: unknown fingerprint %q", c, i, resp.Fingerprint)
					continue
				}
				for _, row := range resp.Rows {
					if row.Subgraphs != want[row.Root] {
						failed.Add(1)
						t.Errorf("client %d req %d: STALE ROW root %d: %d subgraphs, generation %s computes %d",
							c, i, row.Root, row.Subgraphs, resp.Fingerprint, want[row.Root])
					}
				}
			}
		}(c)
	}
	wg.Wait()
	close(stopRel)
	relWG.Wait()

	if failed.Load() != 0 {
		t.Fatalf("%d consistency violations under reload load", failed.Load())
	}
	var stats StatsSnapshot
	doJSON(t, s, http.MethodGet, "/debug/stats", "", &stats)
	if stats.ReloadOK == 0 {
		t.Error("no reload completed during the load window")
	}
	if stats.Cache == nil || stats.Cache.Hits == 0 {
		t.Error("load ran entirely cold; the cache path was not exercised")
	}
	t.Logf("reloads=%d cache=%+v", stats.ReloadOK, stats.Cache)

	waitForGoroutineBaseline(t, baseline)
}

// TestCacheIngestPublishUnderLoadNoStaleRows hammers /v1/features while
// a writer streams mutation batches through /v1/ingest. Each batch adds
// a node and an edge, so every publish has a distinct fingerprint; the
// writer records the expected censuses per fingerprint and every read
// response is checked against the generation it claims to be from.
func TestCacheIngestPublishUnderLoadNoStaleRows(t *testing.T) {
	baseline := runtime.NumGoroutine()
	s, eng := newIngestServer(t, Config{MaxInFlight: 8, MaxQueue: 1024})

	const seedRoots = 5
	var oracle sync.Map // fingerprint -> [seedRoots]int64
	record := func() {
		_, ex, _, _, _ := eng.State()
		var subs [seedRoots]int64
		for r := 0; r < seedRoots; r++ {
			subs[r] = ex.Census(graph.NodeID(r)).Subgraphs
		}
		oracle.Store(fingerprint(ex), subs)
	}
	record() // seed state

	const (
		batches   = 15
		clients   = 6
		perClient = 30
	)
	var (
		failed  atomic.Int64
		checked atomic.Int64
		wg      sync.WaitGroup
	)
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 0; k < batches; k++ {
			body := fmt.Sprintf(
				`{"batch_id":"load-%d","mutations":[{"op":"add_node","label":"act"},{"op":"add_edge","u":%d,"v":%d}]}`,
				k, seedRoots+k, k%seedRoots)
			if w := doJSON(t, s, http.MethodPost, "/v1/ingest", body, nil); w.Code != http.StatusOK {
				t.Errorf("batch %d: status %d: %s", k, w.Code, w.Body.String())
				return
			}
			record()
		}
	}()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				var resp FeaturesResponse
				w := doJSON(t, s, http.MethodPost, "/v1/features", `{"roots":[0,1,2,3,4]}`, &resp)
				if w.Code != http.StatusOK {
					failed.Add(1)
					t.Errorf("client %d req %d: status %d", c, i, w.Code)
					continue
				}
				v, ok := oracle.Load(resp.Fingerprint)
				if !ok {
					// Published but not yet recorded by the writer; the next
					// iterations will cover this generation.
					continue
				}
				want := v.([seedRoots]int64)
				for _, row := range resp.Rows {
					if row.Subgraphs != want[row.Root] {
						failed.Add(1)
						t.Errorf("client %d req %d: STALE ROW root %d: %d subgraphs, generation %s computes %d",
							c, i, row.Root, row.Subgraphs, resp.Fingerprint, want[row.Root])
					}
				}
				checked.Add(1)
			}
		}(c)
	}
	wg.Wait()

	if failed.Load() != 0 {
		t.Fatalf("%d consistency violations under ingest load", failed.Load())
	}
	if checked.Load() == 0 {
		t.Fatal("no response was checked against the oracle")
	}
	t.Logf("checked %d/%d responses against the oracle", checked.Load(), clients*perClient)

	waitForGoroutineBaseline(t, baseline)
}

// waitForGoroutineBaseline fails the test if the goroutine count does
// not return to (near) its pre-test baseline — a leak in the serve or
// coalescing path.
func waitForGoroutineBaseline(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d > baseline %d\n%s", runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
