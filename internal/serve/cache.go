package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"hsgf/internal/graph"
)

// DefaultRowCache is the default bound (in rows, across all shards) of
// the feature-row cache. Entries hold preserialised JSON fragments, so
// the bound is on row count, not bytes; a row on the benchmark graph is
// a few KB.
const DefaultRowCache = 65536

// cacheShardCount shards the row cache to keep lock hold times short
// under concurrent lookups. Power of two so the shard index is a mask.
const cacheShardCount = 16

// rowKey identifies one cached feature row within a serving epoch: the
// root plus the resolved per-root limits fingerprint. The limits ride
// in the key because a budget-truncated row is a deterministic function
// of (graph, options, budget) — the same root under a different budget
// is a different row, and byte-identical replay requires never mixing
// them. The epoch is NOT part of the key: entries carry it and are
// dropped lazily on mismatch, so a reload or ingest publish invalidates
// the whole cache without touching a single entry.
type rowKey struct {
	root     graph.NodeID
	budget   int64
	deadline time.Duration
}

// rowResult is one serving row in its wire form: the preserialised JSON
// object (exactly what json.Marshal produces for the FeatureRow) plus
// the degraded bit the response envelope aggregates. Fragments are
// immutable after creation — the response writer appends them into a
// pooled buffer, so a cached row is never re-marshalled.
type rowResult struct {
	frag     []byte
	degraded bool
}

// rowEntry is one LRU cell. epoch pins the serving generation the row
// was extracted under; a lookup from a newer epoch unlinks it.
type rowEntry struct {
	key        rowKey
	epoch      uint64
	res        rowResult
	prev, next *rowEntry
}

// flight is one in-progress extraction other requests can coalesce on:
// the leader computes the row once, fulfils the flight, and every
// follower waiting on done shares the fragment. Followers read the
// result fields only after done is closed (the close is the
// happens-before edge). shared is false when the leader's row was not
// deterministic (deadline/cancel/panic flags) — followers then compute
// their own row rather than replay a nondeterministic one.
type flight struct {
	done   chan struct{}
	epoch  uint64
	res    rowResult
	shared bool
}

type cacheShard struct {
	mu      sync.Mutex
	cap     int
	entries map[rowKey]*rowEntry
	head    *rowEntry // most recently used
	tail    *rowEntry // least recently used
	flights map[rowKey]*flight
}

// rowCache is the sharded, bounded LRU feature-row cache plus the
// singleflight table. Rows are immutable per serving epoch, so the
// cache never needs explicit invalidation: Server.publish bumps the
// epoch on every snapshot swap (hot reload, ingest publish) and stale
// entries die lazily on their next lookup or fall off the LRU tail.
type rowCache struct {
	shards [cacheShardCount]cacheShard

	hits      atomic.Int64
	misses    atomic.Int64
	coalesced atomic.Int64
	evicted   atomic.Int64
}

func newRowCache(capacity int) *rowCache {
	if capacity <= 0 {
		capacity = DefaultRowCache
	}
	perShard := (capacity + cacheShardCount - 1) / cacheShardCount
	c := &rowCache{}
	for i := range c.shards {
		c.shards[i].cap = perShard
		c.shards[i].entries = make(map[rowKey]*rowEntry)
		c.shards[i].flights = make(map[rowKey]*flight)
	}
	return c
}

func (c *rowCache) shard(key rowKey) *cacheShard {
	// Fibonacci mix so stride-sampled roots spread across shards.
	h := uint64(uint32(key.root)) * 0x9E3779B97F4A7C15
	return &c.shards[(h>>32)&(cacheShardCount-1)]
}

// get returns the cached row for key under epoch. An entry from an
// older epoch is unlinked on sight — the lazy half of generation-keyed
// invalidation — and reported as a miss.
func (c *rowCache) get(key rowKey, epoch uint64) (rowResult, bool) {
	sh := c.shard(key)
	sh.mu.Lock()
	e := sh.entries[key]
	if e == nil {
		sh.mu.Unlock()
		c.misses.Add(1)
		return rowResult{}, false
	}
	if e.epoch != epoch {
		sh.unlink(e)
		delete(sh.entries, key)
		sh.mu.Unlock()
		c.misses.Add(1)
		return rowResult{}, false
	}
	sh.moveToFront(e)
	res := e.res
	sh.mu.Unlock()
	c.hits.Add(1)
	return res, true
}

// put inserts (or refreshes) a row, evicting from the LRU tail past the
// shard bound. Caller guarantees res.frag is never mutated afterwards.
func (c *rowCache) put(key rowKey, epoch uint64, res rowResult) {
	sh := c.shard(key)
	sh.mu.Lock()
	if e := sh.entries[key]; e != nil {
		e.epoch, e.res = epoch, res
		sh.moveToFront(e)
		sh.mu.Unlock()
		return
	}
	e := &rowEntry{key: key, epoch: epoch, res: res}
	sh.entries[key] = e
	sh.pushFront(e)
	for len(sh.entries) > sh.cap && sh.tail != nil {
		victim := sh.tail
		sh.unlink(victim)
		delete(sh.entries, victim.key)
		c.evicted.Add(1)
	}
	sh.mu.Unlock()
}

// join is the atomic lookup-or-coalesce step for a root that missed the
// first cache pass: under one shard lock it re-checks the entry (a
// concurrent request may have filled it since), then either joins an
// in-flight extraction for the same (epoch, key) or registers the
// caller as its leader. Exactly one of hit / (f, leader) / (f,
// !leader) describes the outcome.
func (c *rowCache) join(key rowKey, epoch uint64) (res rowResult, hit bool, f *flight, leader bool) {
	sh := c.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if e := sh.entries[key]; e != nil && e.epoch == epoch {
		sh.moveToFront(e)
		c.hits.Add(1)
		return e.res, true, nil, false
	}
	if f := sh.flights[key]; f != nil && f.epoch == epoch {
		return rowResult{}, false, f, false
	}
	f = &flight{done: make(chan struct{}), epoch: epoch}
	sh.flights[key] = f
	return rowResult{}, false, f, true
}

// fulfill completes a flight: the result is published to followers
// (result fields are written before the close, so every waiter observes
// them), cached when it is deterministic, and the flight deregistered.
// Only the flight's leader calls fulfill, exactly once.
func (c *rowCache) fulfill(key rowKey, f *flight, res rowResult, cacheable bool) {
	f.res, f.shared = res, cacheable
	if cacheable {
		c.put(key, f.epoch, res)
	}
	sh := c.shard(key)
	sh.mu.Lock()
	if sh.flights[key] == f {
		delete(sh.flights, key)
	}
	sh.mu.Unlock()
	close(f.done)
}

// abandon releases a flight whose leader cannot produce a result (error
// path, handler panic): followers wake and compute their own rows.
func (c *rowCache) abandon(key rowKey, f *flight) {
	c.fulfill(key, f, rowResult{}, false)
}

// size counts live entries across all shards (stale epochs included —
// they occupy capacity until dropped).
func (c *rowCache) size() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

func (sh *cacheShard) pushFront(e *rowEntry) {
	e.prev, e.next = nil, sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

func (sh *cacheShard) unlink(e *rowEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (sh *cacheShard) moveToFront(e *rowEntry) {
	if sh.head == e {
		return
	}
	sh.unlink(e)
	sh.pushFront(e)
}

// CacheStats is the feature-row cache block of /debug/stats and
// /v1/meta; absent when the cache is disabled. Hits, misses and
// coalesced count per root (one 8-root request contributes up to 8),
// so hit ratios are row ratios.
type CacheStats struct {
	Enabled  bool  `json:"enabled"`
	Size     int   `json:"size"`
	Capacity int   `json:"capacity"`
	Hits     int64 `json:"hits"`
	Misses   int64 `json:"misses"`
	// Coalesced counts rows a request obtained from a concurrent
	// request's in-flight extraction instead of computing them itself.
	Coalesced int64 `json:"coalesced"`
	Evicted   int64 `json:"evicted"`
	// Epoch is the current serving epoch; it advances on every snapshot
	// publish (hot reload, ingest batch), which is what invalidates
	// every older cached row.
	Epoch uint64 `json:"epoch"`
}

// cacheStats snapshots the cache counters; nil when the cache is off.
func (s *Server) cacheStats() *CacheStats {
	if s.cache == nil {
		return nil
	}
	return &CacheStats{
		Enabled:   true,
		Size:      s.cache.size(),
		Capacity:  s.cfg.RowCache,
		Hits:      s.cache.hits.Load(),
		Misses:    s.cache.misses.Load(),
		Coalesced: s.cache.coalesced.Load(),
		Evicted:   s.cache.evicted.Load(),
		Epoch:     s.epoch.Load(),
	}
}
