// Package serve is the long-lived feature-serving daemon over a loaded
// graph and census extractor: a small HTTP JSON API hardened for the
// heavy-tailed cost distribution of subgraph extraction. One
// pathological (hub) root must never take the daemon down, so every
// request passes three gates — bounded admission (shed with 429 when
// the wait queue is full), a circuit breaker around extraction (503
// while open), and per-request deadlines that degrade results row by
// row (HTTP 200 + CensusFlag taxonomy) instead of failing the request —
// and the process itself recovers handler panics and drains gracefully
// on SIGTERM.
package serve

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"log"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"hsgf/internal/core"
	"hsgf/internal/ingest"
)

// Config tunes the serving daemon. The zero value is usable: every
// field has a production-minded default.
type Config struct {
	// MaxInFlight bounds concurrently extracting requests. Default 4.
	MaxInFlight int
	// MaxQueue bounds requests waiting for an extraction slot; arrivals
	// beyond it are shed with 429. Default 2 * MaxInFlight.
	MaxQueue int
	// RetryAfter is the client backoff hint attached to shed responses.
	// Default 1s.
	RetryAfter time.Duration

	// DefaultDeadline is the per-request extraction deadline when the
	// client does not send one. Default 10s.
	DefaultDeadline time.Duration
	// MaxDeadline caps client-requested deadlines. Default 60s.
	MaxDeadline time.Duration

	// RootBudget / RootDeadline are the default per-root enumeration
	// bounds applied to every request (clients may tighten but not
	// exceed them). Zero inherits the extractor's Options.
	RootBudget   int64
	RootDeadline time.Duration

	// MaxRootsPerRequest bounds the batch size of one /v1/features
	// call. Default 256.
	MaxRootsPerRequest int
	// RowCache bounds the generation-keyed feature-row cache (rows, not
	// bytes, across all shards). 0 uses DefaultRowCache; negative
	// disables caching (and with it request coalescing) entirely.
	RowCache int
	// Workers is the census worker count per request. Default 1: the
	// admission gate, not the pool, owns cross-request parallelism.
	Workers int

	// Breaker tunes the circuit breaker around extraction.
	Breaker BreakerConfig

	// DrainGrace bounds how long Serve waits for in-flight requests
	// after shutdown begins. Default 15s.
	DrainGrace time.Duration

	// Log receives operational messages; nil discards them.
	Log *log.Logger
}

func (c *Config) withDefaults() {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 4
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 2 * c.MaxInFlight
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.DefaultDeadline <= 0 {
		c.DefaultDeadline = 10 * time.Second
	}
	if c.MaxDeadline <= 0 {
		c.MaxDeadline = 60 * time.Second
	}
	if c.MaxRootsPerRequest <= 0 {
		c.MaxRootsPerRequest = 256
	}
	if c.RowCache == 0 {
		c.RowCache = DefaultRowCache
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	c.Breaker.withDefaults()
	if c.DrainGrace <= 0 {
		c.DrainGrace = 15 * time.Second
	}
}

// Server is the hardened feature-serving daemon: an immutable serving
// snapshot (graph + extractor + optional feature set) behind admission
// control, a circuit breaker, panic isolation, zero-downtime hot
// reload, and graceful drain. Construct with NewServer, mount Handler
// on any http.Server, or let Serve own the listener lifecycle.
type Server struct {
	cfg Config

	// snap is the RCU-swapped serving generation: handlers load it once
	// per request and never observe a mid-request change. Reload (SIGHUP
	// or POST /v1/admin/reload) verifies the next generation off the
	// request path and swaps this pointer.
	snap atomic.Pointer[Snapshot]

	adm      *admission
	brk      *Breaker
	stats    *Stats
	draining atomic.Bool

	// cache is the generation-keyed feature-row cache (nil when
	// Config.RowCache < 0); epoch is the monotone serving-epoch counter
	// every publish advances, which is what keys cached rows to exactly
	// one snapshot and makes invalidation free.
	cache *rowCache
	epoch atomic.Uint64

	reloader   func(context.Context) (*Snapshot, error)
	reloadMu   sync.Mutex
	lastReload atomic.Pointer[ReloadOutcome]

	// ingest, when set via SetIngestor, backs POST /v1/ingest and feeds
	// snapshot swaps; ingestAdm is its dedicated write-admission gate.
	ingest    *ingest.Engine
	ingestAdm *admission
	// fleetFollower restricts /v1/ingest to router-sequenced fleet
	// batches (see SetFleetFollower).
	fleetFollower bool
}

// NewServer returns a server over ex with cfg (zero fields defaulted).
func NewServer(ex *core.Extractor, cfg Config) *Server {
	return NewServerSnapshot(NewSnapshot(ex), cfg)
}

// NewServerSnapshot returns a server over a prepared snapshot — the
// constructor for store-backed daemons that carry generation metadata
// and a precomputed feature set.
func NewServerSnapshot(snap *Snapshot, cfg Config) *Server {
	cfg.withDefaults()
	if snap.Fingerprint == "" {
		snap.Fingerprint = fingerprint(snap.Extractor)
	}
	s := &Server{
		cfg:   cfg,
		adm:   newAdmission(cfg.MaxInFlight, cfg.MaxQueue),
		brk:   NewBreaker(cfg.Breaker),
		stats: &Stats{},
	}
	if cfg.RowCache > 0 {
		s.cache = newRowCache(cfg.RowCache)
	}
	s.publish(snap)
	return s
}

// publish stamps snap with the next serving epoch and RCU-swaps it in,
// returning the snapshot it replaced (nil at construction). Every path
// that installs a serving snapshot — construction, hot reload, ingest
// publish — must go through here: the epoch bump is what invalidates
// every feature row cached against the previous snapshot, so a swap
// that bypassed publish could serve stale rows forever.
func (s *Server) publish(snap *Snapshot) *Snapshot {
	snap.epoch = s.epoch.Add(1)
	return s.snap.Swap(snap)
}

// Stats exposes the server's counters (live; snapshot via /debug/stats).
func (s *Server) Stats() *Stats { return s.stats }

// Breaker exposes the circuit breaker, mainly for tests and tooling.
func (s *Server) Breaker() *Breaker { return s.brk }

// Draining reports whether shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// fingerprint digests everything that determines feature semantics —
// graph shape, label alphabet, extraction options — so clients can
// detect that two daemons (or one daemon across restarts) serve
// comparable features.
func fingerprint(ex *core.Extractor) string {
	g := ex.Graph()
	opts := ex.Options()
	h := fnv.New64a()
	fmt.Fprintf(h, "v=%d|e=%d|", g.NumNodes(), g.NumEdges())
	for l := 0; l < ex.LabelSlots(); l++ {
		fmt.Fprintf(h, "l=%s|", ex.SlotName(l))
	}
	fmt.Fprintf(h, "emax=%d|dmax=%d|mask=%v|key=%d",
		opts.MaxEdges, opts.MaxDegree, opts.MaskRootLabel, opts.KeyMode)
	return fmt.Sprintf("%016x", h.Sum64())
}

// Handler returns the daemon's route table wrapped in the panic-recovery
// middleware.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/features", s.handleFeatures)
	mux.HandleFunc("/v1/ingest", s.handleIngest)
	mux.HandleFunc("/v1/meta", s.handleMeta)
	mux.HandleFunc("/v1/admin/reload", s.handleReload)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/readyz", s.handleReadyz)
	mux.HandleFunc("/debug/stats", s.handleStats)
	return s.recoverPanics(mux)
}

// Serve runs the daemon on ln until ctx is cancelled (the caller wires
// SIGTERM/SIGINT via signal.NotifyContext), then drains: the listener
// stops accepting, new requests on live connections are rejected with
// 503 draining, and in-flight extractions get up to DrainGrace to
// finish before the process gives up on them. Returns nil after a clean
// drain.
func (s *Server) Serve(ctx context.Context, ln net.Listener) error {
	httpSrv := &http.Server{Handler: s.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.Serve(ln) }()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}

	s.draining.Store(true)
	s.logf("serve: draining (grace %v)", s.cfg.DrainGrace)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainGrace)
	defer cancel()
	err := httpSrv.Shutdown(shutdownCtx)
	<-errCh // Serve has returned http.ErrServerClosed
	if err != nil {
		return fmt.Errorf("serve: drain incomplete after %v: %w", s.cfg.DrainGrace, err)
	}
	s.logf("serve: drained cleanly")
	return nil
}

// ListenAndServe listens on addr and calls Serve.
func (s *Server) ListenAndServe(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.logf("serve: listening on %s (fingerprint %s)", ln.Addr(), s.snap.Load().Fingerprint)
	return s.Serve(ctx, ln)
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Log != nil {
		s.cfg.Log.Printf(format, args...)
	}
}

// requestDeadline resolves the effective extraction deadline of one
// request: the client value clamped to MaxDeadline, or DefaultDeadline.
func (s *Server) requestDeadline(ms int64) time.Duration {
	d := s.cfg.DefaultDeadline
	if ms > 0 {
		d = time.Duration(ms) * time.Millisecond
	}
	if d > s.cfg.MaxDeadline {
		d = s.cfg.MaxDeadline
	}
	return d
}

// rootLimits resolves the per-root bounds of one request: client values
// may tighten the server defaults but never exceed them.
func (s *Server) rootLimits(budget, deadlineMS int64) core.RootLimits {
	lim := core.RootLimits{Budget: s.cfg.RootBudget, Deadline: s.cfg.RootDeadline}
	if budget > 0 && (lim.Budget == 0 || budget < lim.Budget) {
		lim.Budget = budget
	}
	if d := time.Duration(deadlineMS) * time.Millisecond; d > 0 && (lim.Deadline == 0 || d < lim.Deadline) {
		lim.Deadline = d
	}
	return lim
}

// breakerFailure classifies an extraction outcome for the breaker:
// overload signals only. Deadline-truncated, cancelled and panicked
// rows mean the pool is saturated or sick; budget truncation is a
// deterministic, healthy degradation and never trips the breaker.
func breakerFailure(censuses []*core.Census, ctxErr error) bool {
	if errors.Is(ctxErr, context.DeadlineExceeded) {
		return true
	}
	for _, c := range censuses {
		if c == nil {
			return true // never reached before cancellation
		}
		if c.Flags&(core.FlagDeadlineExceeded|core.FlagCancelled|core.FlagPanicked) != 0 {
			return true
		}
	}
	return false
}
