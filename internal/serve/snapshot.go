package serve

import (
	"context"
	"errors"
	"fmt"
	"time"

	"hsgf/internal/core"
)

// Reload errors.
var (
	// ErrNoReloader: the daemon was started without a reload source
	// (SetReloader was never called), so hot reload is unsupported.
	ErrNoReloader = errors.New("serve: no reloader configured")
	// ErrReloadInProgress: another reload is already running; reloads
	// are single-flight so concurrent triggers cannot interleave.
	ErrReloadInProgress = errors.New("serve: reload already in progress")
)

// Snapshot is one immutable serving generation: the graph (owned by the
// extractor), the extractor over it, the optional precomputed feature
// set, and the fingerprint clients use to detect semantic changes.
// Handlers load the snapshot pointer once per request, so a reload
// never changes the data a request is mid-way through serving — the
// RCU contract: readers see either the old generation or the new one,
// never a mixture.
type Snapshot struct {
	Extractor *core.Extractor
	// Features is the precomputed FeatureSet generation riding along
	// with the graph, when the artifact store holds one. Nil otherwise.
	Features *core.FeatureSet
	// Fingerprint digests graph shape + extraction options (see
	// fingerprint); filled by NewSnapshot when left empty.
	Fingerprint string
	// Generation is the artifact-store generation this snapshot was
	// loaded from; 0 for data loaded directly from a file.
	Generation uint64
	// Source describes where the snapshot came from, for /v1/meta and
	// logs (e.g. "store:/var/lib/hsgf" or "tsv:graph.tsv").
	Source string

	// epoch is the serving epoch Server.publish stamped this snapshot
	// with: a counter that advances on every swap, strictly finer than
	// Generation (an ingest batch publishes without minting a store
	// generation, and a TSV reload re-serves generation 0). Cached
	// feature rows are keyed by it, so any published snapshot — even one
	// byte-identical to its predecessor — starts from a cold cache
	// rather than risking a stale row.
	epoch uint64
}

// NewSnapshot wraps an extractor as a serving snapshot, computing the
// fingerprint if unset.
func NewSnapshot(ex *core.Extractor) *Snapshot {
	return &Snapshot{Extractor: ex, Fingerprint: fingerprint(ex)}
}

// ReloadOutcome records the result of the most recent reload attempt
// for /debug/stats and /readyz.
type ReloadOutcome struct {
	Outcome    string `json:"outcome"` // "ok" or "failed"
	Error      string `json:"error,omitempty"`
	Generation uint64 `json:"generation,omitempty"`
	ElapsedMS  int64  `json:"elapsed_ms"`
}

// SetReloader installs the function that builds a fresh snapshot during
// hot reload. It runs off the request path: it may read and verify
// arbitrarily large artifacts without affecting in-flight traffic,
// returning an error to keep the current generation serving. Call
// before the server starts handling requests.
func (s *Server) SetReloader(fn func(context.Context) (*Snapshot, error)) {
	s.reloader = fn
}

// Snapshot returns the current serving generation.
func (s *Server) Snapshot() *Snapshot { return s.snap.Load() }

// Reload builds a new snapshot through the configured reloader and
// atomically swaps it in. In-flight requests keep the generation they
// started with; requests admitted after the swap see the new one. On
// any failure — including corrupt artifacts, which the store-backed
// reloader quarantines internally — the current generation keeps
// serving and the error is reported to the caller and the stats.
// Single-flight: a reload while one is running returns
// ErrReloadInProgress without waiting.
func (s *Server) Reload(ctx context.Context) (*Snapshot, error) {
	if s.reloader == nil {
		return nil, ErrNoReloader
	}
	if !s.reloadMu.TryLock() {
		return nil, ErrReloadInProgress
	}
	defer s.reloadMu.Unlock()

	s.stats.reloads.Add(1)
	start := time.Now()
	snap, err := s.reloader(ctx)
	if err == nil && (snap == nil || snap.Extractor == nil) {
		err = fmt.Errorf("serve: reloader returned an empty snapshot")
	}
	elapsed := time.Since(start)
	if err != nil {
		s.stats.reloadFailed.Add(1)
		s.lastReload.Store(&ReloadOutcome{
			Outcome:   "failed",
			Error:     err.Error(),
			ElapsedMS: elapsed.Milliseconds(),
		})
		cur := s.snap.Load()
		s.logf("serve: reload failed after %v: %v (still serving generation %d, fingerprint %s)",
			elapsed.Round(time.Millisecond), err, cur.Generation, cur.Fingerprint)
		return nil, err
	}
	if snap.Fingerprint == "" {
		snap.Fingerprint = fingerprint(snap.Extractor)
	}
	old := s.publish(snap)
	s.stats.reloadOK.Add(1)
	s.lastReload.Store(&ReloadOutcome{
		Outcome:    "ok",
		Generation: snap.Generation,
		ElapsedMS:  elapsed.Milliseconds(),
	})
	s.logf("serve: reloaded generation %d in %v (fingerprint %s -> %s)",
		snap.Generation, elapsed.Round(time.Millisecond), old.Fingerprint, snap.Fingerprint)
	return snap, nil
}

// VerifyReload builds and fully verifies the next snapshot through the
// configured reloader without swapping it in — the serving generation
// is untouched. It exists for fleet orchestration: the router's
// shard-by-shard reload first verifies every shard's next generation
// (this call), and flips nothing anywhere unless all of them pass, so a
// half-upgraded fleet cannot happen. Shares the single-flight lock with
// Reload; returns the snapshot that would be served.
func (s *Server) VerifyReload(ctx context.Context) (*Snapshot, error) {
	if s.reloader == nil {
		return nil, ErrNoReloader
	}
	if !s.reloadMu.TryLock() {
		return nil, ErrReloadInProgress
	}
	defer s.reloadMu.Unlock()

	snap, err := s.reloader(ctx)
	if err == nil && (snap == nil || snap.Extractor == nil) {
		err = fmt.Errorf("serve: reloader returned an empty snapshot")
	}
	if err != nil {
		s.logf("serve: reload verification failed: %v (serving generation untouched)", err)
		return nil, err
	}
	if snap.Fingerprint == "" {
		snap.Fingerprint = fingerprint(snap.Extractor)
	}
	s.logf("serve: reload verification ok: generation %d ready (fingerprint %s)", snap.Generation, snap.Fingerprint)
	return snap, nil
}
