package serve

import (
	"testing"
	"time"
)

// testBreaker returns a breaker with a controllable clock.
func testBreaker(cfg BreakerConfig) (*Breaker, *time.Time) {
	b := NewBreaker(cfg)
	now := time.Unix(1000, 0)
	b.now = func() time.Time { return now }
	return b, &now
}

// feed records n outcomes through the closed-state path.
func feed(t *testing.T, b *Breaker, n int, failure bool) {
	t.Helper()
	for i := 0; i < n; i++ {
		done, ok := b.Acquire()
		if !ok {
			t.Fatalf("Acquire refused in state %v after %d outcomes", b.State(), i)
		}
		done(failure)
	}
}

func TestBreakerDefaults(t *testing.T) {
	b := NewBreaker(BreakerConfig{})
	if b.cfg.Window != 20 || b.cfg.MinSamples != 10 || b.cfg.TripRatio != 0.5 ||
		b.cfg.Cooldown != 5*time.Second || b.cfg.HalfOpenProbes != 1 || b.cfg.CloseAfter != 2 {
		t.Errorf("defaults = %+v", b.cfg)
	}
	if b.State() != BreakerClosed {
		t.Errorf("new breaker state %v, want closed", b.State())
	}
}

func TestBreakerStaysClosedBelowMinSamples(t *testing.T) {
	b, _ := testBreaker(BreakerConfig{Window: 10, MinSamples: 5, TripRatio: 0.5})
	feed(t, b, 4, true) // 4 failures, all-failing ratio, but under MinSamples
	if b.State() != BreakerClosed {
		t.Errorf("tripped below MinSamples: state %v", b.State())
	}
}

func TestBreakerTripsAtRatio(t *testing.T) {
	b, _ := testBreaker(BreakerConfig{Window: 10, MinSamples: 4, TripRatio: 0.5, Cooldown: time.Second})
	feed(t, b, 2, false)
	feed(t, b, 2, true) // 2/4 = 0.5 >= TripRatio with MinSamples met
	if b.State() != BreakerOpen {
		t.Fatalf("state %v, want open", b.State())
	}
	if _, ok := b.Acquire(); ok {
		t.Error("open breaker admitted a request")
	}
	if ra := b.RetryAfter(); ra <= 0 || ra > time.Second {
		t.Errorf("RetryAfter = %v, want in (0, cooldown]", ra)
	}
}

func TestBreakerSlidingWindowEvictsOldOutcomes(t *testing.T) {
	b, _ := testBreaker(BreakerConfig{Window: 4, MinSamples: 4, TripRatio: 0.75})
	feed(t, b, 2, true)  // window: F F
	feed(t, b, 4, false) // failures slide out: S S S S
	feed(t, b, 2, true)  // F F S S — ratio 0.5 < 0.75
	if b.State() != BreakerClosed {
		t.Errorf("evicted failures still counted: state %v", b.State())
	}
}

func TestBreakerHalfOpenAfterCooldown(t *testing.T) {
	b, now := testBreaker(BreakerConfig{Window: 4, MinSamples: 2, TripRatio: 0.5, Cooldown: time.Second, HalfOpenProbes: 1, CloseAfter: 2})
	feed(t, b, 2, true)
	if b.State() != BreakerOpen {
		t.Fatalf("state %v, want open", b.State())
	}
	*now = now.Add(999 * time.Millisecond)
	if b.State() != BreakerOpen {
		t.Fatal("advanced to half-open before the cooldown elapsed")
	}
	*now = now.Add(time.Millisecond)
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state %v, want half-open after cooldown", b.State())
	}

	// Only HalfOpenProbes concurrent probes pass.
	done1, ok := b.Acquire()
	if !ok {
		t.Fatal("half-open refused the first probe")
	}
	if _, ok := b.Acquire(); ok {
		t.Fatal("half-open admitted a second concurrent probe")
	}

	// CloseAfter consecutive successes close the breaker.
	done1(false)
	if b.State() != BreakerHalfOpen {
		t.Fatalf("closed after 1 success, CloseAfter = 2")
	}
	done2, ok := b.Acquire()
	if !ok {
		t.Fatal("half-open refused a sequential probe")
	}
	done2(false)
	if b.State() != BreakerClosed {
		t.Fatalf("state %v, want closed after %d probe successes", b.State(), 2)
	}

	// The window was reset on close: one failure must not re-trip.
	feed(t, b, 1, true)
	if b.State() != BreakerClosed {
		t.Error("window not reset after close")
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	b, now := testBreaker(BreakerConfig{Window: 4, MinSamples: 2, TripRatio: 0.5, Cooldown: time.Second, HalfOpenProbes: 1, CloseAfter: 2})
	feed(t, b, 2, true)
	*now = now.Add(time.Second)
	done, ok := b.Acquire()
	if !ok {
		t.Fatal("half-open refused the probe")
	}
	done(true)
	if b.State() != BreakerOpen {
		t.Fatalf("state %v, want open after a failed probe", b.State())
	}
	if ra := b.RetryAfter(); ra != time.Second {
		t.Errorf("RetryAfter after re-open = %v, want full cooldown", ra)
	}
}

func TestBreakerIgnoresStaleOutcomeAfterTrip(t *testing.T) {
	b, _ := testBreaker(BreakerConfig{Window: 4, MinSamples: 2, TripRatio: 0.5, Cooldown: time.Second})
	// A request acquired while closed resolves after the breaker tripped:
	// its outcome must not corrupt the open/half-open bookkeeping.
	stale, ok := b.Acquire()
	if !ok {
		t.Fatal("closed breaker refused")
	}
	feed(t, b, 2, true)
	if b.State() != BreakerOpen {
		t.Fatalf("state %v, want open", b.State())
	}
	stale(false)
	if b.State() != BreakerOpen {
		t.Errorf("stale outcome mutated an open breaker: state %v", b.State())
	}
}

func TestBreakerStateStrings(t *testing.T) {
	if BreakerClosed.String() != "closed" || BreakerOpen.String() != "open" ||
		BreakerHalfOpen.String() != "half-open" || BreakerState(99).String() != "invalid" {
		t.Error("BreakerState.String mismatch")
	}
}
