package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	"hsgf/internal/core"
	"hsgf/internal/graph"
)

// maxRequestBody bounds the /v1/features request body; a root batch is
// small, so anything past this is a client error (or an attack).
const maxRequestBody = 1 << 20

// FeaturesRequest is the body of POST /v1/features.
type FeaturesRequest struct {
	// Roots are the node IDs to extract features for. Required.
	Roots []int64 `json:"roots"`
	// DeadlineMS bounds the whole request's extraction wall-clock time;
	// clamped to the server's MaxDeadline. 0 uses the server default.
	// The header X-Deadline-Ms is an equivalent alternative.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// RootBudget / RootDeadlineMS tighten (never exceed) the server's
	// per-root enumeration bounds for this request.
	RootBudget     int64 `json:"root_budget,omitempty"`
	RootDeadlineMS int64 `json:"root_deadline_ms,omitempty"`
}

// FeatureRow is one root's census in the response: counts keyed by the
// decoded encoding string, plus the degradation taxonomy.
type FeatureRow struct {
	Root int64 `json:"root"`
	// Flags renders the CensusFlag set ("ok", "budget-exceeded",
	// "deadline-exceeded|cancelled", ...). A degraded row is still a
	// valid prefix census — HTTP 200, flagged, never silently partial.
	Flags     string           `json:"flags"`
	Truncated bool             `json:"truncated,omitempty"`
	Subgraphs int64            `json:"subgraphs"`
	Counts    map[string]int64 `json:"counts"`
}

// FeaturesResponse is the body of a successful POST /v1/features.
type FeaturesResponse struct {
	Rows      []FeatureRow `json:"rows"`
	Degraded  bool         `json:"degraded"` // any row flagged
	ElapsedMS int64        `json:"elapsed_ms"`
	// Fingerprint identifies the serving generation that produced every
	// row of this response (one request never spans a hot reload).
	Fingerprint string `json:"fingerprint"`
	Generation  uint64 `json:"generation,omitempty"`
}

// ErrorDetail is the typed JSON error shape of every non-200 response.
type ErrorDetail struct {
	// Code is machine-readable: bad_request, shed, queue_timeout,
	// breaker_open, draining, panic, method_not_allowed.
	Code    string `json:"code"`
	Message string `json:"message"`
	// RetryAfterMS mirrors the Retry-After header on retryable errors.
	RetryAfterMS int64 `json:"retry_after_ms,omitempty"`
}

// MetaResponse is the body of GET /v1/meta.
type MetaResponse struct {
	Fingerprint string   `json:"fingerprint"`
	Generation  uint64   `json:"generation,omitempty"`
	Source      string   `json:"source,omitempty"`
	Nodes       int      `json:"nodes"`
	Edges       int      `json:"edges"`
	Labels      []string `json:"labels"`
	SlotNames   []string `json:"slot_names"`

	// FeatureSetRows is the row count of the precomputed feature set
	// riding along with this generation; 0 when none is loaded.
	FeatureSetRows int `json:"featureset_rows,omitempty"`

	MaxEdges      int    `json:"max_edges"`
	MaxDegree     int    `json:"max_degree,omitempty"`
	MaskRootLabel bool   `json:"mask_root_label,omitempty"`
	KeyMode       string `json:"key_mode"`

	MaxRootsPerRequest int   `json:"max_roots_per_request"`
	DefaultDeadlineMS  int64 `json:"default_deadline_ms"`
	MaxDeadlineMS      int64 `json:"max_deadline_ms"`
	RootBudget         int64 `json:"root_budget,omitempty"`
	RootDeadlineMS     int64 `json:"root_deadline_ms,omitempty"`

	// Ingest is the streaming-ingest freshness watermark; absent when
	// the daemon runs without an ingest engine.
	Ingest *IngestStatus `json:"ingest,omitempty"`

	// Cache is the feature-row cache block (hit/miss/coalesce counters
	// and the serving epoch); absent when the cache is disabled.
	Cache *CacheStats `json:"cache,omitempty"`
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encode errors past this point mean the client went away; the
	// connection is already committed so there is no retry, but the
	// failure is counted rather than discarded — a climbing write_failed
	// in /debug/stats is how an operator sees clients hanging up
	// mid-response.
	if err := json.NewEncoder(w).Encode(v); err != nil {
		s.stats.writeFailed.Add(1)
	}
}

// respBufPool recycles response-assembly buffers across requests so the
// fragment fast path allocates no per-request scratch.
var respBufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

// writeFeaturesResponse assembles and writes a 200 /v1/features body
// from preserialised row fragments: the envelope is written around the
// fragments in exactly the field order (and trailing newline) that
// json.NewEncoder(w).Encode(FeaturesResponse{...}) would produce, so a
// response assembled from cached fragments is byte-identical to one
// marshalled from scratch. Fingerprints are always %016x hex, so the
// string needs no JSON escaping.
func (s *Server) writeFeaturesResponse(w http.ResponseWriter, snap *Snapshot, rows []rowResult, degraded bool, elapsedMS int64) {
	buf := respBufPool.Get().(*bytes.Buffer)
	buf.Reset()
	buf.WriteString(`{"rows":[`)
	for i := range rows {
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.Write(rows[i].frag)
	}
	buf.WriteString(`],"degraded":`)
	buf.WriteString(strconv.FormatBool(degraded))
	buf.WriteString(`,"elapsed_ms":`)
	b := buf.AvailableBuffer()
	buf.Write(strconv.AppendInt(b, elapsedMS, 10))
	buf.WriteString(`,"fingerprint":"`)
	buf.WriteString(snap.Fingerprint)
	buf.WriteByte('"')
	if snap.Generation != 0 {
		buf.WriteString(`,"generation":`)
		b = buf.AvailableBuffer()
		buf.Write(strconv.AppendUint(b, snap.Generation, 10))
	}
	buf.WriteString("}\n")
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	if _, err := w.Write(buf.Bytes()); err != nil {
		s.stats.writeFailed.Add(1)
	}
	respBufPool.Put(buf)
}

// encodeRow renders one census as its wire-form row fragment (the exact
// bytes json.Marshal produces for the FeatureRow) and reports whether
// the row is deterministic and therefore cacheable/shareable: complete
// rows and budget-truncated rows are pure functions of (graph, options,
// limits); deadline, cancellation and panic truncation depend on
// scheduling and must be recomputed per request.
func (s *Server) encodeRow(ex *core.Extractor, root graph.NodeID, c *core.Census) (rowResult, bool) {
	row := FeatureRow{Root: int64(root)}
	if c == nil {
		// Cancelled before this root was ever assigned: an empty,
		// flagged row — same taxonomy FeatureSet uses for nil rows.
		row.Flags = core.FlagCancelled.String()
		row.Truncated = true
		row.Counts = map[string]int64{}
	} else {
		row.Flags = c.Flags.String()
		row.Truncated = c.Truncated
		row.Subgraphs = c.Subgraphs
		row.Counts = make(map[string]int64, len(c.Counts))
		for key, count := range c.Counts {
			row.Counts[ex.EncodingString(key)] = count
		}
	}
	frag, err := json.Marshal(row)
	if err != nil {
		// Unreachable for this shape; recoverPanics turns it into a 500
		// and the deferred abandon releases any waiting followers.
		panic(fmt.Sprintf("serve: marshal feature row: %v", err))
	}
	cacheable := c != nil && (c.Flags == 0 || c.Flags == core.FlagBudgetExceeded)
	return rowResult{frag: frag, degraded: row.Flags != "ok"}, cacheable
}

func (s *Server) writeError(w http.ResponseWriter, status int, code, message string, retryAfter time.Duration) {
	s.writeErrorExtra(w, status, code, message, retryAfter, nil)
}

// writeErrorExtra is writeError plus endpoint-specific machine-readable
// top-level fields (the fleet ingest watermark first among them).
func (s *Server) writeErrorExtra(w http.ResponseWriter, status int, code, message string, retryAfter time.Duration, extra map[string]any) {
	// Shed (429) and unavailable (503) responses always carry a backoff
	// hint so client retry loops can honour the server's view of load
	// instead of guessing; the configured default applies when the
	// caller had no better estimate (e.g. breaker cooldown).
	if retryAfter <= 0 && (status == http.StatusTooManyRequests || status == http.StatusServiceUnavailable) {
		retryAfter = s.cfg.RetryAfter
	}
	if err := WriteJSONError(w, status, code, message, retryAfter, extra); err != nil {
		s.stats.writeFailed.Add(1)
	}
}

// recoverPanics is the outermost middleware: a panicking handler is
// recovered into a PanicRecord-style report (value + stack, logged and
// counted) and a typed 500, and the daemon keeps serving. Census-worker
// panics never reach here — the extractor pool isolates those per root —
// so this guards the serving layer itself.
func (s *Server) recoverPanics(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			if rec := recover(); rec != nil {
				s.stats.panicked.Add(1)
				s.logf("serve: panic in %s %s: %v\n%s", r.Method, r.URL.Path, rec, debug.Stack())
				// Best effort: if the handler already wrote, the
				// connection is poisoned and http closes it.
				s.writeError(w, http.StatusInternalServerError, "panic",
					fmt.Sprintf("internal error serving %s", r.URL.Path), 0)
			}
		}()
		next.ServeHTTP(w, r)
	})
}

// handleFeatures serves POST /v1/features. The warm path is built for
// sub-100µs responses: every requested row is looked up in the
// generation-keyed feature-row cache first, and a request satisfied
// entirely from cache skips the extraction gates (admission, breaker) —
// it performs no extraction, so there is nothing to admit or protect;
// cached rows keep serving even while the breaker is open or the
// extraction queue is shedding. Only rows that miss go through the full
// gate chain — bounded admission, circuit breaker, extraction — with
// singleflight coalescing so concurrent requests for the same
// (epoch, root, limits) compute each census once and share the
// preserialised fragment.
//
// The serving snapshot is loaded exactly once, up front: a hot reload
// mid-request swaps the pointer for later arrivals while this request
// finishes — validation, extraction, and encoding included — against
// the generation it was admitted under. Cached rows are keyed by that
// snapshot's epoch, so a row extracted under the old generation can
// never be served under the new one.
func (s *Server) handleFeatures(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "use POST", 0)
		return
	}
	snap := s.snap.Load()
	ex := snap.Extractor
	if s.draining.Load() {
		s.stats.drained.Add(1)
		s.writeError(w, http.StatusServiceUnavailable, "draining", "server is draining", s.cfg.RetryAfter)
		return
	}

	var req FeaturesRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBody))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.stats.badReq.Add(1)
		s.writeError(w, http.StatusBadRequest, "bad_request", "invalid JSON body: "+err.Error(), 0)
		return
	}
	if len(req.Roots) == 0 {
		s.stats.badReq.Add(1)
		s.writeError(w, http.StatusBadRequest, "bad_request", "roots must not be empty", 0)
		return
	}
	if len(req.Roots) > s.cfg.MaxRootsPerRequest {
		s.stats.badReq.Add(1)
		s.writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("%d roots exceeds the per-request limit of %d", len(req.Roots), s.cfg.MaxRootsPerRequest), 0)
		return
	}
	n := ex.Graph().NumNodes()
	roots := make([]graph.NodeID, len(req.Roots))
	for i, root := range req.Roots {
		if root < 0 || root >= int64(n) {
			s.stats.badReq.Add(1)
			s.writeError(w, http.StatusBadRequest, "bad_request",
				fmt.Sprintf("root %d outside the graph's %d nodes", root, n), 0)
			return
		}
		roots[i] = graph.NodeID(root)
	}
	deadlineMS := req.DeadlineMS
	if h := r.Header.Get("X-Deadline-Ms"); h != "" {
		v, err := strconv.ParseInt(h, 10, 64)
		if err != nil || v <= 0 {
			s.stats.badReq.Add(1)
			s.writeError(w, http.StatusBadRequest, "bad_request", "X-Deadline-Ms must be a positive integer", 0)
			return
		}
		deadlineMS = v
	}

	lim := s.rootLimits(req.RootBudget, req.RootDeadlineMS)
	mkKey := func(root graph.NodeID) rowKey {
		return rowKey{root: root, budget: lim.Budget, deadline: lim.Deadline}
	}

	start := time.Now()
	rows := make([]rowResult, len(roots))
	var missing []int // indices into roots with no cached row
	if s.cache != nil {
		for i, root := range roots {
			if res, ok := s.cache.get(mkKey(root), snap.epoch); ok {
				rows[i] = res
			} else {
				missing = append(missing, i)
			}
		}
		if len(missing) == 0 {
			// Warm fast path: every row came from cache, no extraction
			// happens, so the admission gate and breaker are bypassed and
			// the response is assembled from preserialised fragments.
			s.finishFeatures(w, snap, rows, start)
			return
		}
	} else {
		missing = make([]int, len(roots))
		for i := range missing {
			missing[i] = i
		}
	}

	// Deadline propagation: the request context carries both the
	// client's transport-level cancellation and the resolved extraction
	// deadline into the census workers. Created only on the miss path —
	// the warm path above has nothing to bound.
	ctx, cancel := context.WithTimeout(r.Context(), s.requestDeadline(deadlineMS))
	defer cancel()

	// Gate 1 — bounded admission. Shed rather than queue unboundedly.
	release, err := s.adm.acquire(ctx, func() { s.stats.queued.Add(1) })
	if err != nil {
		switch {
		case err == ErrShed:
			s.stats.shed.Add(1)
			s.writeError(w, http.StatusTooManyRequests, "shed", "admission queue full", s.cfg.RetryAfter)
		default: // ErrQueueTimeout
			s.stats.shed.Add(1)
			s.writeError(w, http.StatusServiceUnavailable, "queue_timeout",
				"deadline expired waiting for an extraction slot", s.cfg.RetryAfter)
		}
		return
	}
	defer release()

	// Gate 2 — circuit breaker around extraction.
	done, ok := s.brk.Acquire()
	if !ok {
		s.stats.tripped.Add(1)
		retry := s.brk.RetryAfter()
		if retry <= 0 {
			retry = s.cfg.RetryAfter
		}
		s.writeError(w, http.StatusServiceUnavailable, "breaker_open",
			"circuit breaker open: extraction is shedding sustained failures", retry)
		return
	}

	s.stats.accepted.Add(1)

	// One extraction per distinct missing root. With the cache enabled,
	// each distinct root either re-checks as a hit (filled by a
	// concurrent request since the first pass), joins that request's
	// in-flight extraction as a follower, or registers this request as
	// the flight's leader. Flights are registered only after admission,
	// so every flight's leader holds an extraction slot and will fulfil
	// it without waiting on further resources — the fulfil-before-wait
	// ordering below is what makes cross-request coalescing deadlock-free.
	type missRoot struct {
		root     graph.NodeID
		idxs     []int // positions in rows sharing this root
		f        *flight
		leader   bool
		res      rowResult
		resolved bool
	}
	var misses []missRoot
	if s.cache != nil {
		byRoot := make(map[graph.NodeID]int, len(missing))
		for _, idx := range missing {
			root := roots[idx]
			if mi, dup := byRoot[root]; dup {
				misses[mi].idxs = append(misses[mi].idxs, idx)
				continue
			}
			byRoot[root] = len(misses)
			m := missRoot{root: root, idxs: []int{idx}}
			if res, hit, f, leader := s.cache.join(mkKey(root), snap.epoch); hit {
				m.res, m.resolved = res, true
			} else {
				m.f, m.leader = f, leader
			}
			misses = append(misses, m)
		}
		// A panic between here and fulfilment (recovered into a 500 by
		// the middleware) must not strand followers: abandon any flight
		// this request leads and never fulfilled.
		defer func() {
			for i := range misses {
				if m := &misses[i]; m.leader && !m.resolved {
					s.cache.abandon(mkKey(m.root), m.f)
				}
			}
		}()
	} else {
		misses = make([]missRoot, len(missing))
		for i, idx := range missing {
			misses[i] = missRoot{root: roots[idx], idxs: []int{idx}, leader: true}
		}
	}

	var leadRoots []graph.NodeID
	for i := range misses {
		if m := &misses[i]; m.leader {
			leadRoots = append(leadRoots, m.root)
		}
	}
	var (
		censuses []*core.Census
		ctxErr   error
	)
	if len(leadRoots) > 0 {
		censuses, ctxErr = ex.CensusAllWithLimits(ctx, leadRoots, s.cfg.Workers, lim)
	}
	// The breaker samples this request's own extraction; rows obtained
	// from cache or another request's flight carry no overload signal.
	done(breakerFailure(censuses, ctxErr))

	// Fulfil every led flight before waiting on any followed one.
	li := 0
	for i := range misses {
		m := &misses[i]
		if !m.leader {
			continue
		}
		res, cacheable := s.encodeRow(ex, m.root, censuses[li])
		li++
		m.res, m.resolved = res, true
		if s.cache != nil {
			s.cache.fulfill(mkKey(m.root), m.f, res, cacheable)
		}
	}

	// Follower rows: wait for the leading request's fragment, bounded by
	// this request's own deadline. A flight that ends without a
	// shareable row (the leader's extraction was deadline-truncated or
	// cancelled) falls back to a local extraction.
	var fallback []*missRoot
	for i := range misses {
		m := &misses[i]
		if m.resolved || m.leader {
			continue
		}
		select {
		case <-m.f.done:
			if m.f.shared {
				m.res, m.resolved = m.f.res, true
				s.cache.coalesced.Add(1)
				continue
			}
		case <-ctx.Done():
		}
		fallback = append(fallback, m)
	}
	if len(fallback) > 0 {
		fbRoots := make([]graph.NodeID, len(fallback))
		for i, m := range fallback {
			fbRoots[i] = m.root
		}
		// Past the breaker's done call by construction; degraded rows
		// from an expired ctx surface in the response flags instead.
		fbCensuses, _ := ex.CensusAllWithLimits(ctx, fbRoots, s.cfg.Workers, lim)
		for i, m := range fallback {
			res, cacheable := s.encodeRow(ex, m.root, fbCensuses[i])
			if s.cache != nil && cacheable {
				s.cache.put(mkKey(m.root), snap.epoch, res)
			}
			m.res, m.resolved = res, true
		}
	}

	for i := range misses {
		m := &misses[i]
		for _, idx := range m.idxs {
			rows[idx] = m.res
		}
	}
	s.finishFeatures(w, snap, rows, start)
}

// finishFeatures records the completion counters and writes the 200
// response assembled from row fragments.
func (s *Server) finishFeatures(w http.ResponseWriter, snap *Snapshot, rows []rowResult, start time.Time) {
	degraded := false
	for i := range rows {
		if rows[i].degraded {
			degraded = true
			break
		}
	}
	elapsed := time.Since(start)
	s.stats.observeLatency(elapsed)
	s.stats.completed.Add(1)
	if degraded {
		s.stats.degraded.Add(1)
	}
	s.writeFeaturesResponse(w, snap, rows, degraded, elapsed.Milliseconds())
}

// handleMeta serves GET /v1/meta: the serving generation, its
// graph/options fingerprint, and the limits a well-behaved client
// needs. Reads one consistent snapshot, so a concurrent reload can
// never mix two generations in one response.
func (s *Server) handleMeta(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		s.writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "use GET", 0)
		return
	}
	snap := s.snap.Load()
	ex := snap.Extractor
	g := ex.Graph()
	opts := ex.Options()
	meta := MetaResponse{
		Fingerprint:        snap.Fingerprint,
		Generation:         snap.Generation,
		Source:             snap.Source,
		Nodes:              g.NumNodes(),
		Edges:              g.NumEdges(),
		Labels:             g.Alphabet().Names(),
		MaxEdges:           opts.MaxEdges,
		MaxDegree:          opts.MaxDegree,
		MaskRootLabel:      opts.MaskRootLabel,
		KeyMode:            opts.KeyMode.String(),
		MaxRootsPerRequest: s.cfg.MaxRootsPerRequest,
		DefaultDeadlineMS:  s.cfg.DefaultDeadline.Milliseconds(),
		MaxDeadlineMS:      s.cfg.MaxDeadline.Milliseconds(),
		RootBudget:         s.cfg.RootBudget,
		RootDeadlineMS:     s.cfg.RootDeadline.Milliseconds(),
		Ingest:             s.ingestStatus(),
		Cache:              s.cacheStats(),
	}
	if snap.Features != nil {
		meta.FeatureSetRows = len(snap.Features.Rows)
	}
	for l := 0; l < ex.LabelSlots(); l++ {
		meta.SlotNames = append(meta.SlotNames, ex.SlotName(l))
	}
	s.writeJSON(w, http.StatusOK, meta)
}

// ReloadResponse is the body of a successful POST /v1/admin/reload.
type ReloadResponse struct {
	Generation  uint64 `json:"generation"`
	Fingerprint string `json:"fingerprint"`
	ElapsedMS   int64  `json:"elapsed_ms"`
	// Verified is true for verify-only calls (?verify=1): the reported
	// generation passed verification but was NOT swapped in.
	Verified bool `json:"verified,omitempty"`
}

// handleReload serves POST /v1/admin/reload: verify the newest artifact
// generation off the request path, then RCU-swap it in. With ?verify=1
// the swap is skipped — the next generation is built and verified, the
// current one keeps serving — which is the first phase of the routing
// tier's fleet-wide reload protocol. Failure keeps the current
// generation serving and reports a typed error; a reload already in
// flight is a 409 so automation never stacks reloads.
func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "use POST", 0)
		return
	}
	if s.draining.Load() {
		s.writeError(w, http.StatusServiceUnavailable, "draining", "server is draining", s.cfg.RetryAfter)
		return
	}
	verifyOnly := r.URL.Query().Get("verify") == "1"
	start := time.Now()
	var (
		snap *Snapshot
		err  error
	)
	if verifyOnly {
		snap, err = s.VerifyReload(r.Context())
	} else {
		snap, err = s.Reload(r.Context())
	}
	switch {
	case err == nil:
		s.writeJSON(w, http.StatusOK, ReloadResponse{
			Generation:  snap.Generation,
			Fingerprint: snap.Fingerprint,
			ElapsedMS:   time.Since(start).Milliseconds(),
			Verified:    verifyOnly,
		})
	case errors.Is(err, ErrNoReloader):
		s.writeError(w, http.StatusNotImplemented, "reload_unsupported",
			"daemon was started without a reloadable artifact source", 0)
	case errors.Is(err, ErrReloadInProgress):
		s.writeError(w, http.StatusConflict, "reload_in_progress", "a reload is already running", s.cfg.RetryAfter)
	default:
		// The old generation is still serving; the reload just failed to
		// produce a better one.
		s.writeError(w, http.StatusInternalServerError, "reload_failed", err.Error(), 0)
	}
}

// handleHealthz reports liveness: the process is up and serving HTTP,
// even while draining or with the breaker open.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz reports readiness: 503 once draining so load balancers
// stop routing here, and 503 with reason ingest_failed once the ingest
// engine latches its post-durability failure state — such a shard can
// no longer accept writes until a restart replays the WAL, so it must
// drop out of router rotation automatically rather than only flagging
// the failure in /debug/stats. The breaker state, serving generation,
// and last reload outcome ride along for observability (an open breaker
// or a failed reload still serves the current generation and will
// recover, so neither fails readiness by itself).
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	snap := s.snap.Load()
	body := map[string]any{
		"status":      "ready",
		"breaker":     s.brk.State().String(),
		"generation":  snap.Generation,
		"fingerprint": snap.Fingerprint,
	}
	if last := s.lastReload.Load(); last != nil {
		body["last_reload"] = last
	}
	ing := s.ingestStatus()
	if ing != nil {
		body["ingest"] = ing
	}
	switch {
	case s.draining.Load():
		body["status"] = "draining"
		body["reason"] = "draining"
		s.writeJSON(w, http.StatusServiceUnavailable, body)
	case ing != nil && ing.Failed:
		body["status"] = "unready"
		body["reason"] = "ingest_failed"
		s.writeJSON(w, http.StatusServiceUnavailable, body)
	default:
		s.writeJSON(w, http.StatusOK, body)
	}
}

// handleStats serves the counter snapshot on GET /debug/stats.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	serving := s.snap.Load()
	snap := s.stats.snapshot()
	snap.InFlight = int64(s.adm.inFlight())
	snap.QueueDepth = int64(s.adm.queued())
	snap.BreakerState = s.brk.State().String()
	snap.Draining = s.draining.Load()
	snap.Generation = serving.Generation
	snap.Fingerprint = serving.Fingerprint
	snap.LastReload = s.lastReload.Load()
	snap.Ingest = s.ingestStatus()
	snap.Cache = s.cacheStats()
	s.writeJSON(w, http.StatusOK, snap)
}
