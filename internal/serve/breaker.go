package serve

import (
	"sync"
	"time"
)

// BreakerState is the circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed: requests flow; outcomes feed the failure window.
	BreakerClosed BreakerState = iota
	// BreakerOpen: requests are rejected until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: a bounded number of probe requests flow; their
	// outcomes decide between closing and re-opening.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "invalid"
	}
}

// BreakerConfig tunes the circuit breaker around extraction.
type BreakerConfig struct {
	// Window is the number of recent request outcomes considered when
	// deciding to trip. Default 20.
	Window int
	// MinSamples is the minimum number of outcomes in the window before
	// the breaker may trip; avoids tripping on the first failure after
	// startup. Default Window/2.
	MinSamples int
	// TripRatio is the windowed failure ratio at which the breaker
	// opens. Default 0.5.
	TripRatio float64
	// Cooldown is how long the breaker stays open before admitting
	// half-open probes. Default 5s.
	Cooldown time.Duration
	// HalfOpenProbes is the number of concurrent probe requests allowed
	// while half-open. Default 1.
	HalfOpenProbes int
	// CloseAfter is the number of consecutive successful probes that
	// close the breaker again. Default 2.
	CloseAfter int
}

func (c *BreakerConfig) withDefaults() {
	if c.Window <= 0 {
		c.Window = 20
	}
	if c.MinSamples <= 0 {
		c.MinSamples = c.Window / 2
		if c.MinSamples < 1 {
			c.MinSamples = 1
		}
	}
	if c.TripRatio <= 0 || c.TripRatio > 1 {
		c.TripRatio = 0.5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 1
	}
	if c.CloseAfter <= 0 {
		c.CloseAfter = 2
	}
}

// Breaker is a closed/open/half-open circuit breaker over a sliding
// window of request outcomes. It protects the census pool from sustained
// overload (deadline storms, panic loops): once the windowed failure
// ratio crosses TripRatio the breaker opens and requests are rejected
// outright — cheap, typed, retryable — instead of queueing onto a sick
// extractor. After Cooldown it admits a bounded number of probes;
// CloseAfter consecutive probe successes close it, any probe failure
// re-opens it for another cooldown.
type Breaker struct {
	cfg BreakerConfig
	now func() time.Time // injectable clock for deterministic tests

	mu       sync.Mutex
	state    BreakerState
	ring     []bool // recent outcomes, true = failure
	ringIdx  int
	ringLen  int
	failures int
	openedAt time.Time
	probing  int // in-flight half-open probes
	probeOK  int // consecutive successful probes
}

// NewBreaker returns a closed breaker with cfg (zero fields defaulted).
func NewBreaker(cfg BreakerConfig) *Breaker {
	cfg.withDefaults()
	return &Breaker{cfg: cfg, now: time.Now, ring: make([]bool, cfg.Window)}
}

// State reports the breaker's current position, advancing open →
// half-open if the cooldown has elapsed.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maybeHalfOpenLocked()
	return b.state
}

// RetryAfter returns the remaining cooldown while open (zero otherwise);
// servers surface it as a Retry-After hint.
func (b *Breaker) RetryAfter() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerOpen {
		return 0
	}
	rem := b.cfg.Cooldown - b.now().Sub(b.openedAt)
	if rem < 0 {
		return 0
	}
	return rem
}

// Acquire asks to pass the breaker. On success it returns a done
// callback that MUST be invoked exactly once with the request's outcome
// (failure = extraction-level fault: deadline, cancellation, panic).
// While open (or half-open with all probe slots taken) it returns false.
func (b *Breaker) Acquire() (done func(failure bool), ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maybeHalfOpenLocked()

	switch b.state {
	case BreakerOpen:
		return nil, false
	case BreakerHalfOpen:
		if b.probing >= b.cfg.HalfOpenProbes {
			return nil, false
		}
		b.probing++
		return b.probeDone, true
	default: // closed
		return b.recordDone, true
	}
}

// maybeHalfOpenLocked advances open → half-open after the cooldown.
func (b *Breaker) maybeHalfOpenLocked() {
	if b.state == BreakerOpen && b.now().Sub(b.openedAt) >= b.cfg.Cooldown {
		b.state = BreakerHalfOpen
		b.probing = 0
		b.probeOK = 0
	}
}

// recordDone feeds a closed-state outcome into the sliding window and
// trips the breaker when the failure ratio crosses the threshold.
func (b *Breaker) recordDone(failure bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerClosed {
		// A half-open or open transition raced this in-flight request;
		// its outcome no longer belongs to the closed window.
		return
	}
	if b.ringLen == len(b.ring) {
		if b.ring[b.ringIdx] {
			b.failures--
		}
	} else {
		b.ringLen++
	}
	b.ring[b.ringIdx] = failure
	if failure {
		b.failures++
	}
	b.ringIdx = (b.ringIdx + 1) % len(b.ring)

	if b.ringLen >= b.cfg.MinSamples &&
		float64(b.failures) >= b.cfg.TripRatio*float64(b.ringLen) {
		b.tripLocked()
	}
}

// probeDone resolves one half-open probe.
func (b *Breaker) probeDone(failure bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != BreakerHalfOpen {
		return
	}
	b.probing--
	if failure {
		b.tripLocked()
		return
	}
	b.probeOK++
	if b.probeOK >= b.cfg.CloseAfter {
		b.state = BreakerClosed
		b.resetWindowLocked()
	}
}

func (b *Breaker) tripLocked() {
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.probing = 0
	b.probeOK = 0
	b.resetWindowLocked()
}

func (b *Breaker) resetWindowLocked() {
	for i := range b.ring {
		b.ring[i] = false
	}
	b.ringIdx, b.ringLen, b.failures = 0, 0, 0
}
