package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// Backoff-hint contract: every shed (429) and unavailable (503)
// response carries a Retry-After header and a stable machine-readable
// reason, because the routing tier's retry loop keys on both.

func TestWriteErrorAlwaysHintsOnShedAndUnavailable(t *testing.T) {
	s, _ := newTestServer(t, Config{RetryAfter: 2 * time.Second})
	cases := []struct {
		status     int
		code       string
		retryAfter time.Duration
		wantHeader string
		wantMS     int64
	}{
		// Explicit hint: surfaced as given, rounded up to whole seconds
		// in the header, exact in the JSON field.
		{http.StatusServiceUnavailable, "breaker_open", 2500 * time.Millisecond, "2", 2500},
		// Sub-second hints round the header up to 1, never down to 0.
		{http.StatusTooManyRequests, "shed", 300 * time.Millisecond, "1", 300},
		// No hint from the caller: the configured default applies on
		// 429/503 so these responses are never hint-less.
		{http.StatusTooManyRequests, "shed", 0, "2", 2000},
		{http.StatusServiceUnavailable, "queue_timeout", 0, "2", 2000},
		// Non-retryable statuses stay hint-less.
		{http.StatusBadRequest, "bad_request", 0, "", 0},
	}
	for _, tc := range cases {
		w := httptest.NewRecorder()
		s.writeError(w, tc.status, tc.code, "msg", tc.retryAfter)
		if got := w.Header().Get("Retry-After"); got != tc.wantHeader {
			t.Errorf("%s %d: Retry-After = %q, want %q", tc.code, tc.status, got, tc.wantHeader)
		}
		var body struct {
			Reason       string `json:"reason"`
			RetryAfterMS int64  `json:"retry_after_ms"`
			Error        ErrorDetail
		}
		if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
			t.Fatalf("%s: undecodable body %q: %v", tc.code, w.Body.String(), err)
		}
		if body.Reason != tc.code {
			t.Errorf("%s: top-level reason = %q, want the error code", tc.code, body.Reason)
		}
		if body.RetryAfterMS != tc.wantMS {
			t.Errorf("%s: retry_after_ms = %d, want %d", tc.code, body.RetryAfterMS, tc.wantMS)
		}
		if body.Error.Code != tc.code {
			t.Errorf("%s: nested error.code = %q lost", tc.code, body.Error.Code)
		}
	}
}

// TestBreakerOpenResponseCarriesCooldownHint trips the breaker and
// asserts the 503 surfaces the remaining cooldown, not the generic
// default.
func TestBreakerOpenResponseCarriesCooldownHint(t *testing.T) {
	s, _ := newTestServer(t, Config{
		Breaker: BreakerConfig{Window: 4, MinSamples: 2, Cooldown: 30 * time.Second},
	})
	for i := 0; i < 4; i++ {
		if done, ok := s.brk.Acquire(); ok {
			done(true)
		}
	}
	if s.brk.State() != BreakerOpen {
		t.Fatal("breaker did not trip during setup")
	}
	w := doJSON(t, s, http.MethodPost, "/v1/features", `{"roots":[1]}`, nil)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("breaker_open 503 without a Retry-After header")
	}
	var body struct {
		Reason       string `json:"reason"`
		RetryAfterMS int64  `json:"retry_after_ms"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Reason != "breaker_open" {
		t.Errorf("reason = %q, want breaker_open", body.Reason)
	}
	if body.RetryAfterMS <= 0 || body.RetryAfterMS > 30000 {
		t.Errorf("retry_after_ms = %d, want the remaining cooldown", body.RetryAfterMS)
	}
}

// TestVerifyOnlyReloadDoesNotSwap: ?verify=1 builds and verifies the
// next snapshot but the serving generation must not change.
func TestVerifyOnlyReloadDoesNotSwap(t *testing.T) {
	s, ex := newTestServer(t, Config{})
	calls := 0
	s.SetReloader(func(ctx context.Context) (*Snapshot, error) {
		calls++
		next := NewSnapshot(ex)
		next.Generation = 42
		return next, nil
	})

	before := s.Snapshot().Generation
	var resp ReloadResponse
	w := doJSON(t, s, http.MethodPost, "/v1/admin/reload?verify=1", " ", &resp)
	if w.Code != http.StatusOK {
		t.Fatalf("verify reload = %d: %s", w.Code, w.Body.String())
	}
	if !resp.Verified || resp.Generation != 42 {
		t.Fatalf("verify response %+v, want verified generation 42", resp)
	}
	if calls != 1 {
		t.Fatalf("reloader ran %d times, want 1", calls)
	}
	if got := s.Snapshot().Generation; got != before {
		t.Fatalf("serving generation moved %d -> %d on a verify-only reload", before, got)
	}

	// A plain reload afterwards does swap.
	resp = ReloadResponse{}
	w = doJSON(t, s, http.MethodPost, "/v1/admin/reload", " ", &resp)
	if w.Code != http.StatusOK || resp.Verified {
		t.Fatalf("real reload = %d (verified=%v)", w.Code, resp.Verified)
	}
	if got := s.Snapshot().Generation; got != 42 {
		t.Fatalf("serving generation %d after real reload, want 42", got)
	}
}
