package serve

import (
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"hsgf/internal/core"
	"hsgf/internal/graph"
)

// testGraph builds a small labelled graph with enough structure that
// every census is non-trivial.
func testGraph(t testing.TB, n int) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	b := graph.NewBuilderWithAlphabet(graph.MustAlphabet("a", "b", "c"))
	for i := 0; i < n; i++ {
		if _, err := b.AddLabeledNode(graph.Label(rng.Intn(3))); err != nil {
			t.Fatal(err)
		}
	}
	for v := 0; v < n; v++ {
		for k := 0; k < 3; k++ {
			u := rng.Intn(n)
			if u != v {
				if err := b.AddEdge(graph.NodeID(v), graph.NodeID(u)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return b.MustBuild()
}

// newTestServer builds a server over a fresh small graph.
func newTestServer(t testing.TB, cfg Config) (*Server, *core.Extractor) {
	t.Helper()
	ex, err := core.NewExtractor(testGraph(t, 30), core.Options{MaxEdges: 3})
	if err != nil {
		t.Fatal(err)
	}
	return NewServer(ex, cfg), ex
}

// doJSON issues one request against the server's handler and decodes the
// JSON response into out (if non-nil).
func doJSON(t testing.TB, s *Server, method, path, body string, out any) *httptest.ResponseRecorder {
	t.Helper()
	var r *http.Request
	if body == "" {
		r = httptest.NewRequest(method, path, nil)
	} else {
		r = httptest.NewRequest(method, path, strings.NewReader(body))
	}
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, r)
	if out != nil {
		if err := json.Unmarshal(w.Body.Bytes(), out); err != nil {
			t.Fatalf("%s %s: undecodable body %q: %v", method, path, w.Body.String(), err)
		}
	}
	return w
}

// errorBody decodes the shared error envelope WriteJSONError emits.
type errorBody struct {
	Error        ErrorDetail `json:"error"`
	Reason       string      `json:"reason"`
	RetryAfterMS int64       `json:"retry_after_ms"`
}

func errorCode(t testing.TB, w *httptest.ResponseRecorder) string {
	t.Helper()
	var body errorBody
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatalf("undecodable error body %q: %v", w.Body.String(), err)
	}
	return body.Error.Code
}

func TestFeaturesHappyPath(t *testing.T) {
	s, ex := newTestServer(t, Config{})
	var resp FeaturesResponse
	w := doJSON(t, s, http.MethodPost, "/v1/features", `{"roots":[0,1,2]}`, &resp)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	if len(resp.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(resp.Rows))
	}
	if resp.Degraded {
		t.Error("unconstrained extraction reported degraded")
	}
	for i, row := range resp.Rows {
		if row.Root != int64(i) {
			t.Errorf("row %d root = %d", i, row.Root)
		}
		if row.Flags != "ok" {
			t.Errorf("row %d flags = %q, want ok", i, row.Flags)
		}
		if row.Subgraphs <= 0 || len(row.Counts) == 0 {
			t.Errorf("row %d empty: %+v", i, row)
		}
	}

	// The responses agree with a direct census on the same extractor.
	direct := ex.Census(0)
	if resp.Rows[0].Subgraphs != direct.Subgraphs {
		t.Errorf("served %d subgraphs for root 0, direct census %d", resp.Rows[0].Subgraphs, direct.Subgraphs)
	}

	if got := s.Stats().completed.Load(); got != 1 {
		t.Errorf("completed = %d, want 1", got)
	}
}

func TestFeaturesBadRequests(t *testing.T) {
	s, _ := newTestServer(t, Config{MaxRootsPerRequest: 4})
	cases := []struct {
		name, body string
		header     map[string]string
	}{
		{name: "invalid JSON", body: `{`},
		{name: "unknown field", body: `{"roots":[0],"bogus":1}`},
		{name: "empty roots", body: `{"roots":[]}`},
		{name: "missing roots", body: `{}`},
		{name: "too many roots", body: `{"roots":[0,1,2,3,4]}`},
		{name: "negative root", body: `{"roots":[-1]}`},
		{name: "root out of range", body: `{"roots":[99999]}`},
		{name: "bad deadline header", body: `{"roots":[0]}`, header: map[string]string{"X-Deadline-Ms": "soon"}},
	}
	for _, tc := range cases {
		r := httptest.NewRequest(http.MethodPost, "/v1/features", strings.NewReader(tc.body))
		for k, v := range tc.header {
			r.Header.Set(k, v)
		}
		w := httptest.NewRecorder()
		s.Handler().ServeHTTP(w, r)
		if w.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, w.Code)
		}
		if code := errorCode(t, w); code != "bad_request" {
			t.Errorf("%s: code %q, want bad_request", tc.name, code)
		}
	}
	if got := s.Stats().badReq.Load(); got != int64(len(cases)) {
		t.Errorf("badReq = %d, want %d", got, len(cases))
	}
}

func TestFeaturesMethodNotAllowed(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	w := doJSON(t, s, http.MethodGet, "/v1/features", "", nil)
	if w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("status %d, want 405", w.Code)
	}
	if code := errorCode(t, w); code != "method_not_allowed" {
		t.Errorf("code %q", code)
	}
}

func TestFeaturesBudgetTruncationIsDegradedNotFailed(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	var resp FeaturesResponse
	w := doJSON(t, s, http.MethodPost, "/v1/features", `{"roots":[0,1],"root_budget":1}`, &resp)
	if w.Code != http.StatusOK {
		t.Fatalf("budget truncation must stay HTTP 200, got %d: %s", w.Code, w.Body.String())
	}
	if !resp.Degraded {
		t.Fatal("response not marked degraded")
	}
	for i, row := range resp.Rows {
		if !strings.Contains(row.Flags, "budget-exceeded") || !row.Truncated {
			t.Errorf("row %d = %+v, want budget-exceeded + truncated", i, row)
		}
	}
	// Budget truncation is deterministic degradation, not overload: the
	// breaker must not count it as a failure.
	if s.Breaker().State() != BreakerClosed {
		t.Errorf("breaker %v after budget truncation, want closed", s.Breaker().State())
	}
	if got := s.Stats().degraded.Load(); got != 1 {
		t.Errorf("degraded = %d, want 1", got)
	}
}

func TestClientCannotExceedServerRootLimits(t *testing.T) {
	s, _ := newTestServer(t, Config{RootBudget: 1})
	var resp FeaturesResponse
	// The client asks for a far larger budget; the server's bound wins.
	doJSON(t, s, http.MethodPost, "/v1/features", `{"roots":[0],"root_budget":1000000}`, &resp)
	if !resp.Degraded || !strings.Contains(resp.Rows[0].Flags, "budget-exceeded") {
		t.Errorf("server RootBudget not enforced: %+v", resp.Rows[0])
	}
}

func TestMeta(t *testing.T) {
	s, ex := newTestServer(t, Config{})
	var meta MetaResponse
	w := doJSON(t, s, http.MethodGet, "/v1/meta", "", &meta)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	g := ex.Graph()
	if meta.Nodes != g.NumNodes() || meta.Edges != g.NumEdges() {
		t.Errorf("meta shape %d/%d, graph %d/%d", meta.Nodes, meta.Edges, g.NumNodes(), g.NumEdges())
	}
	if len(meta.Fingerprint) != 16 {
		t.Errorf("fingerprint %q, want 16 hex chars", meta.Fingerprint)
	}
	if len(meta.SlotNames) != ex.LabelSlots() {
		t.Errorf("slot names %v", meta.SlotNames)
	}
	if meta.MaxEdges != 3 || meta.MaxRootsPerRequest != 256 {
		t.Errorf("limits %+v", meta)
	}

	if w := doJSON(t, s, http.MethodPost, "/v1/meta", "", nil); w.Code != http.StatusMethodNotAllowed {
		t.Errorf("POST /v1/meta status %d, want 405", w.Code)
	}

	// Same graph + options ⇒ same fingerprint across servers.
	s2 := NewServer(ex, Config{})
	var meta2 MetaResponse
	doJSON(t, s2, http.MethodGet, "/v1/meta", "", &meta2)
	if meta2.Fingerprint != meta.Fingerprint {
		t.Error("fingerprint not stable across servers over the same extractor")
	}
}

func TestHealthAndReadiness(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	var health map[string]string
	if w := doJSON(t, s, http.MethodGet, "/healthz", "", &health); w.Code != http.StatusOK || health["status"] != "ok" {
		t.Errorf("healthz = %d %v", w.Code, health)
	}
	var ready map[string]any
	if w := doJSON(t, s, http.MethodGet, "/readyz", "", &ready); w.Code != http.StatusOK || ready["status"] != "ready" || ready["breaker"] != "closed" {
		t.Errorf("readyz = %d %v", w.Code, ready)
	}

	s.draining.Store(true)
	if w := doJSON(t, s, http.MethodGet, "/readyz", "", &ready); w.Code != http.StatusServiceUnavailable || ready["status"] != "draining" {
		t.Errorf("draining readyz = %d %v", w.Code, ready)
	}
	// Liveness holds through a drain.
	if w := doJSON(t, s, http.MethodGet, "/healthz", "", &health); w.Code != http.StatusOK {
		t.Errorf("healthz while draining = %d", w.Code)
	}
}

func TestFeaturesRejectedWhileDraining(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	s.draining.Store(true)
	w := doJSON(t, s, http.MethodPost, "/v1/features", `{"roots":[0]}`, nil)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", w.Code)
	}
	if code := errorCode(t, w); code != "draining" {
		t.Errorf("code %q, want draining", code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("draining rejection missing Retry-After")
	}
}

func TestFeaturesRejectedWhileBreakerOpen(t *testing.T) {
	s, _ := newTestServer(t, Config{Breaker: BreakerConfig{Window: 2, MinSamples: 1, TripRatio: 0.5, Cooldown: time.Hour}})
	// Trip the breaker directly.
	done, ok := s.Breaker().Acquire()
	if !ok {
		t.Fatal("closed breaker refused")
	}
	done(true)
	if s.Breaker().State() != BreakerOpen {
		t.Fatal("breaker not open")
	}

	w := doJSON(t, s, http.MethodPost, "/v1/features", `{"roots":[0]}`, nil)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", w.Code)
	}
	if code := errorCode(t, w); code != "breaker_open" {
		t.Errorf("code %q, want breaker_open", code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("breaker rejection missing Retry-After")
	}
	if got := s.Stats().tripped.Load(); got != 1 {
		t.Errorf("tripped = %d, want 1", got)
	}
	// Meta and health stay reachable with the breaker open.
	if w := doJSON(t, s, http.MethodGet, "/v1/meta", "", nil); w.Code != http.StatusOK {
		t.Errorf("meta with open breaker = %d", w.Code)
	}
	var ready map[string]any
	if w := doJSON(t, s, http.MethodGet, "/readyz", "", &ready); w.Code != http.StatusOK || ready["breaker"] != "open" {
		t.Errorf("readyz with open breaker = %d %v (open breaker alone must not fail readiness)", w.Code, ready)
	}
}

func TestPanicInHandlerRecovered(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	mux := http.NewServeMux()
	mux.HandleFunc("/boom", func(http.ResponseWriter, *http.Request) { panic("kaboom") })
	h := s.recoverPanics(mux)

	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/boom", nil))
	if w.Code != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", w.Code)
	}
	if code := errorCode(t, w); code != "panic" {
		t.Errorf("code %q, want panic", code)
	}
	if got := s.Stats().panicked.Load(); got != 1 {
		t.Errorf("panicked = %d, want 1", got)
	}
}

func TestDebugStats(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	doJSON(t, s, http.MethodPost, "/v1/features", `{"roots":[0,1]}`, nil)
	doJSON(t, s, http.MethodPost, "/v1/features", `{"roots":[]}`, nil)

	var snap StatsSnapshot
	w := doJSON(t, s, http.MethodGet, "/debug/stats", "", &snap)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d", w.Code)
	}
	if snap.Accepted != 1 || snap.Completed != 1 || snap.BadReq != 1 {
		t.Errorf("snapshot %+v", snap)
	}
	if snap.BreakerState != "closed" || snap.Draining {
		t.Errorf("snapshot state %+v", snap)
	}
	if len(snap.Latency) == 0 {
		t.Error("no latency observations after a completed request")
	}
	var total int64
	for _, b := range snap.Latency {
		total += b.Count
	}
	if total != 1 {
		t.Errorf("latency observations = %d, want 1", total)
	}
}

func TestRequestDeadlineClamping(t *testing.T) {
	s, _ := newTestServer(t, Config{DefaultDeadline: 10 * time.Second, MaxDeadline: 30 * time.Second})
	if d := s.requestDeadline(0); d != 10*time.Second {
		t.Errorf("default deadline %v", d)
	}
	if d := s.requestDeadline(5000); d != 5*time.Second {
		t.Errorf("client deadline %v", d)
	}
	if d := s.requestDeadline(600000); d != 30*time.Second {
		t.Errorf("uncapped deadline %v", d)
	}
}

func TestRootLimitsResolution(t *testing.T) {
	s, _ := newTestServer(t, Config{RootBudget: 100, RootDeadline: time.Second})
	lim := s.rootLimits(0, 0)
	if lim.Budget != 100 || lim.Deadline != time.Second {
		t.Errorf("defaults %+v", lim)
	}
	lim = s.rootLimits(10, 100)
	if lim.Budget != 10 || lim.Deadline != 100*time.Millisecond {
		t.Errorf("tightened %+v", lim)
	}
	lim = s.rootLimits(1000, 10000)
	if lim.Budget != 100 || lim.Deadline != time.Second {
		t.Errorf("client exceeded server bounds: %+v", lim)
	}
}
