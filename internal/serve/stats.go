package serve

import (
	"sync/atomic"
	"time"
)

// latencyBuckets are the upper bounds of the request-latency histogram,
// doubling from 1ms; the last bucket is unbounded. Fixed bounds keep the
// histogram lock-free and allocation-free on the hot path.
var latencyBuckets = [...]time.Duration{
	1 * time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond,
	8 * time.Millisecond, 16 * time.Millisecond, 32 * time.Millisecond,
	64 * time.Millisecond, 128 * time.Millisecond, 256 * time.Millisecond,
	512 * time.Millisecond, 1 * time.Second, 2 * time.Second,
	4 * time.Second, 8 * time.Second, 16 * time.Second, 32 * time.Second,
}

// Stats aggregates the daemon's lifecycle counters. All fields are
// updated atomically; Snapshot assembles a consistent-enough view for
// /debug/stats (counters may be mutually off by in-flight requests, a
// tolerable skew for operational telemetry).
type Stats struct {
	// Request admission outcomes.
	accepted atomic.Int64 // entered extraction
	queued   atomic.Int64 // waited in the admission queue before a slot
	shed     atomic.Int64 // rejected 429: queue full
	tripped  atomic.Int64 // rejected 503: breaker open
	drained  atomic.Int64 // rejected 503: draining

	// Request completion outcomes.
	completed atomic.Int64 // 200 responses
	degraded  atomic.Int64 // 200 responses with >= 1 flagged row
	panicked  atomic.Int64 // handler panics recovered into 500s
	badReq    atomic.Int64 // 400 responses
	// writeFailed counts response bodies that failed mid-write (the
	// client hung up after the handler committed the status). The write
	// cannot be retried, but a climbing counter is the difference
	// between "clients are timing out on us" and silence.
	writeFailed atomic.Int64

	// Hot-reload outcomes.
	reloads      atomic.Int64 // reload attempts (SIGHUP or admin endpoint)
	reloadOK     atomic.Int64 // attempts that swapped a new generation in
	reloadFailed atomic.Int64 // attempts that kept the old generation

	latency [len(latencyBuckets) + 1]atomic.Int64
}

// observeLatency records one request duration in the histogram.
func (s *Stats) observeLatency(d time.Duration) {
	for i, ub := range latencyBuckets {
		if d <= ub {
			s.latency[i].Add(1)
			return
		}
	}
	s.latency[len(latencyBuckets)].Add(1)
}

// LatencyBucket is one histogram cell: the inclusive upper bound in
// milliseconds (0 for the overflow bucket) and the observation count.
type LatencyBucket struct {
	UpperMS int64 `json:"upper_ms"` // 0 = +Inf
	Count   int64 `json:"count"`
}

// StatsSnapshot is the JSON shape of /debug/stats.
type StatsSnapshot struct {
	Accepted  int64 `json:"accepted"`
	Queued    int64 `json:"queued"`
	Shed      int64 `json:"shed"`
	Tripped   int64 `json:"tripped"`
	Drained   int64 `json:"drained"`
	Completed int64 `json:"completed"`
	Degraded  int64 `json:"degraded"`
	Panicked  int64 `json:"panicked"`
	BadReq    int64 `json:"bad_request"`
	// WriteFailed counts responses whose body write failed after the
	// status was committed (client gone mid-response).
	WriteFailed int64 `json:"write_failed"`

	InFlight   int64 `json:"in_flight"`
	QueueDepth int64 `json:"queue_depth"`

	BreakerState string `json:"breaker_state"`
	Draining     bool   `json:"draining"`

	// Hot-reload state: the serving generation and the reload counters.
	Generation   uint64         `json:"generation,omitempty"`
	Fingerprint  string         `json:"fingerprint,omitempty"`
	Reloads      int64          `json:"reloads"`
	ReloadOK     int64          `json:"reload_ok"`
	ReloadFailed int64          `json:"reload_failed"`
	LastReload   *ReloadOutcome `json:"last_reload,omitempty"`

	// Ingest is the streaming-ingest freshness watermark; absent when
	// the daemon runs without an ingest engine.
	Ingest *IngestStatus `json:"ingest,omitempty"`

	// Cache is the feature-row cache block (hits/misses/coalesce and
	// the serving epoch); absent when the cache is disabled.
	Cache *CacheStats `json:"cache,omitempty"`

	Latency []LatencyBucket `json:"latency"`
}

// snapshot captures the counters; breaker state and draining flag are
// filled in by the server, which owns those components.
func (s *Stats) snapshot() StatsSnapshot {
	snap := StatsSnapshot{
		Accepted:    s.accepted.Load(),
		Queued:      s.queued.Load(),
		Shed:        s.shed.Load(),
		Tripped:     s.tripped.Load(),
		Drained:     s.drained.Load(),
		Completed:   s.completed.Load(),
		Degraded:    s.degraded.Load(),
		Panicked:    s.panicked.Load(),
		BadReq:      s.badReq.Load(),
		WriteFailed: s.writeFailed.Load(),

		Reloads:      s.reloads.Load(),
		ReloadOK:     s.reloadOK.Load(),
		ReloadFailed: s.reloadFailed.Load(),
	}
	for i := range s.latency {
		n := s.latency[i].Load()
		if n == 0 {
			continue
		}
		var ub int64
		if i < len(latencyBuckets) {
			ub = latencyBuckets[i].Milliseconds()
		}
		snap.Latency = append(snap.Latency, LatencyBucket{UpperMS: ub, Count: n})
	}
	return snap
}
