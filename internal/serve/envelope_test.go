package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

// TestWriteJSONErrorEnvelope pins the shared error envelope both tiers
// emit: nested error object, stable top-level reason, Retry-After
// header/retry_after_ms mirroring, and extra machine-readable fields
// for protocol responses (fleet watermark). hsgfd and hsgf-router both
// route every non-200 through this helper, so this table is the
// cross-tier error contract.
func TestWriteJSONErrorEnvelope(t *testing.T) {
	cases := []struct {
		name       string
		status     int
		code       string
		retryAfter time.Duration
		extra      map[string]any
		wantHeader string
		wantMS     int64
	}{
		{name: "plain 400", status: http.StatusBadRequest, code: "bad_mutation"},
		{name: "plain 405", status: http.StatusMethodNotAllowed, code: "method_not_allowed"},
		{
			name:   "503 with hint",
			status: http.StatusServiceUnavailable, code: "breaker_open",
			retryAfter: 2500 * time.Millisecond,
			wantHeader: "2", wantMS: 2500,
		},
		{
			name:   "sub-second hint held up to 1s",
			status: http.StatusTooManyRequests, code: "shed",
			retryAfter: 300 * time.Millisecond,
			wantHeader: "1", wantMS: 300,
		},
		{
			name:   "gap response with watermark",
			status: http.StatusConflict, code: "sequence_gap",
			extra: map[string]any{"watermark": uint64(41)},
		},
		{
			name:   "partial apply with watermark and hint",
			status: http.StatusServiceUnavailable, code: "fleet_partial_apply",
			retryAfter: time.Second,
			extra:      map[string]any{"watermark": uint64(7)},
			wantHeader: "1", wantMS: 1000,
		},
		{
			name:   "extra cannot shadow envelope fields",
			status: http.StatusBadRequest, code: "bad_request",
			extra: map[string]any{"reason": "spoofed", "watermark": uint64(3)},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := httptest.NewRecorder()
			if err := WriteJSONError(w, tc.status, tc.code, "msg", tc.retryAfter, tc.extra); err != nil {
				t.Fatalf("WriteJSONError: %v", err)
			}
			if w.Code != tc.status {
				t.Errorf("status = %d, want %d", w.Code, tc.status)
			}
			if got := w.Header().Get("Content-Type"); got != "application/json" {
				t.Errorf("Content-Type = %q", got)
			}
			if got := w.Header().Get("Retry-After"); got != tc.wantHeader {
				t.Errorf("Retry-After = %q, want %q", got, tc.wantHeader)
			}
			var body struct {
				Error        ErrorDetail `json:"error"`
				Reason       string      `json:"reason"`
				RetryAfterMS int64       `json:"retry_after_ms"`
				Watermark    *uint64     `json:"watermark"`
			}
			if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
				t.Fatalf("undecodable body %q: %v", w.Body.String(), err)
			}
			if body.Error.Code != tc.code || body.Error.Message != "msg" {
				t.Errorf("nested error = %+v", body.Error)
			}
			if body.Reason != tc.code {
				t.Errorf("reason = %q, want %q (extras must not shadow it)", body.Reason, tc.code)
			}
			if body.RetryAfterMS != tc.wantMS || body.Error.RetryAfterMS != tc.wantMS {
				t.Errorf("retry_after_ms = %d/%d, want %d", body.RetryAfterMS, body.Error.RetryAfterMS, tc.wantMS)
			}
			if wm, ok := tc.extra["watermark"]; ok {
				if body.Watermark == nil || *body.Watermark != wm.(uint64) {
					t.Errorf("watermark missing or wrong: %v", body.Watermark)
				}
			} else if body.Watermark != nil {
				t.Errorf("unexpected watermark %d", *body.Watermark)
			}
		})
	}
}
