package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hsgf/internal/core"
	"hsgf/internal/graph"
)

// denseServeGraph mirrors the core fault-injection harness: dense enough
// that censuses at MaxEdges 4 run for thousands of candidate steps, so
// injected slowness at the extractor's poll points has somewhere to bite.
func denseServeGraph(t testing.TB, n int) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(404))
	b := graph.NewBuilderWithAlphabet(graph.MustAlphabet("a", "b"))
	for i := 0; i < n; i++ {
		if _, err := b.AddLabeledNode(graph.Label(rng.Intn(2))); err != nil {
			t.Fatal(err)
		}
	}
	for u := 0; u < n; u++ {
		for k := 0; k < 8; k++ {
			v := rng.Intn(n)
			if v != u {
				if err := b.AddEdge(graph.NodeID(u), graph.NodeID(v)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	return b.MustBuild()
}

// slowableExtractor returns an extractor over a dense graph plus a root
// whose census is large enough to cross several poll points.
func slowableExtractor(t testing.TB) (*core.Extractor, graph.NodeID) {
	t.Helper()
	g := denseServeGraph(t, 100)
	ex, err := core.NewExtractor(g, core.Options{MaxEdges: 4})
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.NumNodes(); v++ {
		if ex.Census(graph.NodeID(v)).Subgraphs > 5000 {
			return ex, graph.NodeID(v)
		}
	}
	t.Fatal("no root with a census large enough to reach poll points")
	return nil, 0
}

func postFeatures(s *Server, body string) *httptest.ResponseRecorder {
	r := httptest.NewRequest(http.MethodPost, "/v1/features", strings.NewReader(body))
	w := httptest.NewRecorder()
	s.Handler().ServeHTTP(w, r)
	return w
}

// TestSlowRootDegradesOnlyItsOwnRequest injects artificial slowness into
// one root's enumeration and shows the blast radius is exactly one
// request: the slow request comes back 200 with flagged rows, while a
// concurrent request over healthy roots is untouched.
func TestSlowRootDegradesOnlyItsOwnRequest(t *testing.T) {
	ex, slow := slowableExtractor(t)
	ex.SetFaultHooks(&core.FaultHooks{OnStep: func(root graph.NodeID, step uint64) {
		if root == slow {
			time.Sleep(50 * time.Millisecond)
		}
	}})
	s := NewServer(ex, Config{Workers: 1})

	// Pick two healthy roots distinct from the slow one.
	a, b := (slow+1)%100, (slow+2)%100

	var wg sync.WaitGroup
	var slowResp *httptest.ResponseRecorder
	wg.Add(1)
	go func() {
		defer wg.Done()
		slowResp = postFeatures(s, fmt.Sprintf(`{"roots":[%d,%d,%d],"deadline_ms":150}`, slow, a, b))
	}()

	// While the slow request is wedged at a poll point, a healthy request
	// sails through.
	time.Sleep(20 * time.Millisecond)
	w := postFeatures(s, fmt.Sprintf(`{"roots":[%d,%d]}`, a, b))
	if w.Code != http.StatusOK {
		t.Fatalf("healthy request during slow one: %d %s", w.Code, w.Body.String())
	}
	var healthy FeaturesResponse
	mustDecode(t, w, &healthy)
	if healthy.Degraded {
		t.Errorf("healthy request degraded by a slow root it never asked for: %+v", healthy.Rows)
	}

	wg.Wait()
	if slowResp.Code != http.StatusOK {
		t.Fatalf("slow request status %d, want 200 degraded: %s", slowResp.Code, slowResp.Body.String())
	}
	var degraded FeaturesResponse
	mustDecode(t, slowResp, &degraded)
	if !degraded.Degraded {
		t.Fatal("slow request not marked degraded")
	}
	row := degraded.Rows[0]
	if row.Flags == "ok" || !row.Truncated {
		t.Errorf("slow root row = %+v, want truncated + flagged", row)
	}
	// The breaker saw one overload outcome — far below MinSamples — so it
	// must still admit traffic.
	if s.Breaker().State() != BreakerClosed {
		t.Errorf("breaker %v after a single slow request", s.Breaker().State())
	}
}

// TestPanickingRootIsIsolatedAndServerStaysUp injects a deterministic
// panic into one root's census: that row is flagged panicked, sibling
// rows in the same request are exact, and the daemon keeps serving.
func TestPanickingRootIsIsolatedAndServerStaysUp(t *testing.T) {
	ex, err := core.NewExtractor(testGraph(t, 30), core.Options{MaxEdges: 3})
	if err != nil {
		t.Fatal(err)
	}
	victim := graph.NodeID(5)
	ex.SetFaultHooks(&core.FaultHooks{OnRootStart: func(root graph.NodeID) {
		if root == victim {
			panic("injected: corrupt adjacency")
		}
	}})
	s := NewServer(ex, Config{})

	w := postFeatures(s, `{"roots":[4,5,6]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d, want 200 with a flagged row: %s", w.Code, w.Body.String())
	}
	var resp FeaturesResponse
	mustDecode(t, w, &resp)
	if !resp.Degraded {
		t.Fatal("response with a panicked row not marked degraded")
	}
	for _, row := range resp.Rows {
		if row.Root == int64(victim) {
			if !strings.Contains(row.Flags, "panicked") || !row.Truncated || len(row.Counts) != 0 {
				t.Errorf("victim row = %+v, want empty + panicked", row)
			}
		} else if row.Flags != "ok" || row.Subgraphs <= 0 {
			t.Errorf("sibling row %+v degraded by another root's panic", row)
		}
	}
	if panics := ex.Panics(); len(panics) != 1 || panics[0].Root != victim {
		t.Errorf("Panics() = %+v, want one record for root %d", panics, victim)
	}

	// The daemon is still healthy: a follow-up request is all-ok.
	w = postFeatures(s, `{"roots":[7,8]}`)
	var after FeaturesResponse
	mustDecode(t, w, &after)
	if w.Code != http.StatusOK || after.Degraded {
		t.Errorf("follow-up request after panic: %d degraded=%v", w.Code, after.Degraded)
	}
	if s.Stats().panicked.Load() != 0 {
		t.Error("census panic leaked into the handler panic counter; the pool must absorb it")
	}
}

// TestBreakerLifecycleOverHTTP drives the breaker through
// closed → open → half-open → closed with real requests: sustained
// injected panics trip it, 503s flow while open, and a healthy probe
// after the cooldown closes it again.
func TestBreakerLifecycleOverHTTP(t *testing.T) {
	ex, err := core.NewExtractor(testGraph(t, 30), core.Options{MaxEdges: 3})
	if err != nil {
		t.Fatal(err)
	}
	var failMode atomic.Bool
	ex.SetFaultHooks(&core.FaultHooks{OnRootStart: func(graph.NodeID) {
		if failMode.Load() {
			panic("injected: sustained overload")
		}
	}})
	const cooldown = 150 * time.Millisecond
	s := NewServer(ex, Config{Breaker: BreakerConfig{
		Window: 4, MinSamples: 2, TripRatio: 0.5,
		Cooldown: cooldown, HalfOpenProbes: 1, CloseAfter: 1,
	}})

	// Sustained failures: every root panics, every outcome is a failure.
	failMode.Store(true)
	for i := 0; i < 2; i++ {
		if w := postFeatures(s, `{"roots":[0]}`); w.Code != http.StatusOK {
			t.Fatalf("degraded request %d status %d, want 200", i, w.Code)
		}
	}
	if s.Breaker().State() != BreakerOpen {
		t.Fatalf("breaker %v after sustained failures, want open", s.Breaker().State())
	}

	// While open: typed 503 without touching the extractor.
	w := postFeatures(s, `{"roots":[0]}`)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d with open breaker, want 503", w.Code)
	}
	if code := errorCode(t, w); code != "breaker_open" {
		t.Errorf("code %q, want breaker_open", code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("breaker_open missing Retry-After")
	}

	// Recovery: fault cleared, cooldown elapsed, one healthy probe closes.
	failMode.Store(false)
	time.Sleep(cooldown + 50*time.Millisecond)
	w = postFeatures(s, `{"roots":[0]}`)
	if w.Code != http.StatusOK {
		t.Fatalf("probe after cooldown: %d %s", w.Code, w.Body.String())
	}
	if s.Breaker().State() != BreakerClosed {
		t.Fatalf("breaker %v after healthy probe, want closed", s.Breaker().State())
	}
	var resp FeaturesResponse
	mustDecode(t, postFeatures(s, `{"roots":[0,1]}`), &resp)
	if resp.Degraded {
		t.Error("post-recovery request degraded")
	}
}

// TestQueueOverflowSheds fills the single extraction slot and the
// one-deep wait queue, then shows the next arrival is shed with 429
// while the queued requests complete once the slot frees.
func TestQueueOverflowSheds(t *testing.T) {
	ex, err := core.NewExtractor(testGraph(t, 30), core.Options{MaxEdges: 3})
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	ex.SetFaultHooks(&core.FaultHooks{OnRootStart: func(root graph.NodeID) {
		if root == 0 {
			<-gate
		}
	}})
	s := NewServer(ex, Config{MaxInFlight: 1, MaxQueue: 1})

	var wg sync.WaitGroup
	var occupant, queued *httptest.ResponseRecorder
	wg.Add(1)
	go func() { defer wg.Done(); occupant = postFeatures(s, `{"roots":[0]}`) }()
	waitCounter(t, &s.stats.accepted, 1)

	wg.Add(1)
	go func() { defer wg.Done(); queued = postFeatures(s, `{"roots":[1]}`) }()
	waitCounter(t, &s.stats.queued, 1)

	// Slot busy, queue full: the third arrival is shed immediately.
	w := postFeatures(s, `{"roots":[1]}`)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status %d with full queue, want 429", w.Code)
	}
	if code := errorCode(t, w); code != "shed" {
		t.Errorf("code %q, want shed", code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}
	if got := s.Stats().shed.Load(); got != 1 {
		t.Errorf("shed = %d, want 1", got)
	}

	close(gate)
	wg.Wait()
	if occupant.Code != http.StatusOK || queued.Code != http.StatusOK {
		t.Errorf("occupant %d, queued %d after gate release, want both 200", occupant.Code, queued.Code)
	}
}

// TestGracefulDrain runs the full listener lifecycle: an in-flight
// request survives SIGTERM (ctx cancellation), new requests are rejected
// with 503 draining, Serve returns a clean nil, and no goroutines leak.
func TestGracefulDrain(t *testing.T) {
	before := runtime.NumGoroutine()

	ex, err := core.NewExtractor(testGraph(t, 30), core.Options{MaxEdges: 3})
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	ex.SetFaultHooks(&core.FaultHooks{OnRootStart: func(root graph.NodeID) {
		if root == 0 {
			<-gate
		}
	}})
	s := NewServer(ex, Config{DrainGrace: 5 * time.Second})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ctx, ln) }()

	// One request in flight, wedged inside extraction.
	client := &http.Client{}
	defer client.CloseIdleConnections()
	url := "http://" + ln.Addr().String() + "/v1/features"
	type result struct {
		status int
		body   []byte
		err    error
	}
	inflight := make(chan result, 1)
	go func() {
		resp, err := client.Post(url, "application/json", strings.NewReader(`{"roots":[0]}`))
		if err != nil {
			inflight <- result{err: err}
			return
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		inflight <- result{status: resp.StatusCode, body: body}
	}()
	waitCounter(t, &s.stats.accepted, 1)

	// SIGTERM (the daemon wires signals to ctx cancellation).
	cancel()
	deadline := time.Now().Add(2 * time.Second)
	for !s.Draining() && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if !s.Draining() {
		t.Fatal("server never entered draining after ctx cancellation")
	}

	// New work is rejected while draining (asserted through the handler:
	// the listener itself is already closed to fresh connections).
	w := postFeatures(s, `{"roots":[1]}`)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("request while draining: %d, want 503", w.Code)
	}
	if code := errorCode(t, w); code != "draining" {
		t.Errorf("code %q, want draining", code)
	}

	// The wedged in-flight request completes inside the grace window.
	close(gate)
	select {
	case res := <-inflight:
		if res.err != nil {
			t.Fatalf("in-flight request failed during drain: %v", res.err)
		}
		if res.status != http.StatusOK {
			t.Fatalf("in-flight request status %d during drain, want 200: %s", res.status, res.body)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never completed during drain")
	}
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("Serve returned %v after a clean drain, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after drain")
	}

	// Everything the lifecycle spawned has exited.
	client.CloseIdleConnections()
	leakDeadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(leakDeadline) {
		time.Sleep(20 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Errorf("goroutines: %d before, %d after drain", before, after)
	}
}

// mustDecode unmarshals a recorder body into out or fails the test.
func mustDecode(t testing.TB, w *httptest.ResponseRecorder, out any) {
	t.Helper()
	if err := json.Unmarshal(w.Body.Bytes(), out); err != nil {
		t.Fatalf("undecodable body %q: %v", w.Body.String(), err)
	}
}

// waitCounter polls an atomic counter until it reaches want.
func waitCounter(t testing.TB, c *atomic.Int64, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.Load() < want && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if got := c.Load(); got < want {
		t.Fatalf("counter stuck at %d, want >= %d", got, want)
	}
}
