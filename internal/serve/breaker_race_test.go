package serve

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// These tests race concurrent requests against the breaker's half-open
// transition. They are written to run under -race (the race job runs
// this package): the property under test is that when the cooldown
// elapses and a stampede of requests arrives at once, exactly
// HalfOpenProbes of them are admitted as probes, everyone else is
// rejected, and the observable state never moves backwards
// (open -> half-open -> closed with no intermediate regressions).

// trippedBreaker returns an open breaker with an injectable clock
// already past its cooldown, so the next Acquire races the half-open
// transition.
func trippedBreaker(cfg BreakerConfig) (*Breaker, *atomic.Int64) {
	b := NewBreaker(cfg)
	var nowNS atomic.Int64
	nowNS.Store(time.Unix(1000, 0).UnixNano())
	b.now = func() time.Time { return time.Unix(0, nowNS.Load()) }

	// Trip: enough failures to cross the ratio.
	for i := 0; i < cfg.Window; i++ {
		done, ok := b.Acquire()
		if !ok {
			break
		}
		done(true)
	}
	if b.State() != BreakerOpen {
		panic("breaker did not trip during setup")
	}
	nowNS.Add(int64(b.cfg.Cooldown) + 1)
	return b, &nowNS
}

// TestBreakerHalfOpenAdmitsExactlyOneProbeUnderRace: 64 goroutines hit
// Acquire the instant the cooldown elapses; exactly one may pass.
func TestBreakerHalfOpenAdmitsExactlyOneProbeUnderRace(t *testing.T) {
	for round := 0; round < 20; round++ {
		b, _ := trippedBreaker(BreakerConfig{Window: 8, MinSamples: 4, Cooldown: time.Second, HalfOpenProbes: 1, CloseAfter: 1})

		const goroutines = 64
		var (
			admitted atomic.Int64
			dones    [goroutines]func(bool)
			start    sync.WaitGroup
			finish   sync.WaitGroup
		)
		start.Add(1)
		for i := 0; i < goroutines; i++ {
			finish.Add(1)
			go func(i int) {
				defer finish.Done()
				start.Wait()
				if done, ok := b.Acquire(); ok {
					admitted.Add(1)
					dones[i] = done
				}
			}(i)
		}
		start.Done()
		finish.Wait()

		if n := admitted.Load(); n != 1 {
			t.Fatalf("round %d: %d probes admitted while half-open, want exactly 1", round, n)
		}
		if st := b.State(); st != BreakerHalfOpen {
			t.Fatalf("round %d: state %v with a probe in flight, want half-open", round, st)
		}
		// Resolve the winning probe successfully: with CloseAfter=1 the
		// breaker must close, and the stampede flows again.
		for _, done := range dones {
			if done != nil {
				done(false)
			}
		}
		if st := b.State(); st != BreakerClosed {
			t.Fatalf("round %d: state %v after successful probe, want closed", round, st)
		}
	}
}

// TestBreakerHalfOpenTransitionsMonotonicUnderRace: while acquires,
// probe completions and state reads race, the observed state sequence
// per observer never regresses from half-open back to open without an
// intervening probe failure, and never skips from open to closed.
func TestBreakerHalfOpenTransitionsMonotonicUnderRace(t *testing.T) {
	b, _ := trippedBreaker(BreakerConfig{Window: 8, MinSamples: 4, Cooldown: time.Second, HalfOpenProbes: 1, CloseAfter: 2})

	var wg sync.WaitGroup
	stopReaders := make(chan struct{})
	// Observers: each records its own state sequence; with all probes
	// succeeding, any observed sequence must be a subsequence of
	// open -> half-open -> closed.
	rank := func(s BreakerState) int {
		switch s {
		case BreakerOpen:
			return 0
		case BreakerHalfOpen:
			return 1
		default: // closed
			return 2
		}
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := -1
			for {
				select {
				case <-stopReaders:
					return
				default:
				}
				cur := rank(b.State())
				if cur < last {
					t.Errorf("state regressed from rank %d to %d without a probe failure", last, cur)
					return
				}
				last = cur
			}
		}()
	}
	// Drivers: acquire and always succeed, racing the half-open probe
	// accounting and the close transition.
	var drivers sync.WaitGroup
	for d := 0; d < 8; d++ {
		drivers.Add(1)
		go func() {
			defer drivers.Done()
			for i := 0; i < 200; i++ {
				if done, ok := b.Acquire(); ok {
					done(false)
				}
			}
		}()
	}
	drivers.Wait()
	close(stopReaders)
	wg.Wait()

	if st := b.State(); st != BreakerClosed {
		t.Fatalf("state %v after 1600 successful outcomes, want closed", st)
	}
}
