package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hsgf/internal/core"
)

// reloadableServer builds a server whose reloader swaps between two
// distinct extractors (different graphs, so different fingerprints),
// bumping the generation on every successful reload.
func reloadableServer(t testing.TB, cfg Config) (*Server, *core.Extractor, *core.Extractor) {
	t.Helper()
	exA, err := core.NewExtractor(testGraph(t, 30), core.Options{MaxEdges: 3})
	if err != nil {
		t.Fatal(err)
	}
	exB, err := core.NewExtractor(testGraph(t, 40), core.Options{MaxEdges: 3})
	if err != nil {
		t.Fatal(err)
	}
	s := NewServer(exA, cfg)
	var gen atomic.Uint64
	s.SetReloader(func(ctx context.Context) (*Snapshot, error) {
		g := gen.Add(1)
		ex := exA
		if g%2 == 1 {
			ex = exB
		}
		snap := NewSnapshot(ex)
		snap.Generation = g
		snap.Source = "test"
		return snap, nil
	})
	return s, exA, exB
}

func TestReloadSwapsGeneration(t *testing.T) {
	s, exA, exB := reloadableServer(t, Config{})
	fpA, fpB := fingerprint(exA), fingerprint(exB)
	if fpA == fpB {
		t.Fatal("test graphs must have distinct fingerprints")
	}

	var meta MetaResponse
	doJSON(t, s, http.MethodGet, "/v1/meta", "", &meta)
	if meta.Fingerprint != fpA || meta.Generation != 0 {
		t.Fatalf("initial meta = %+v, want fingerprint %s gen 0", meta, fpA)
	}

	var resp ReloadResponse
	if w := doJSON(t, s, http.MethodPost, "/v1/admin/reload", "", &resp); w.Code != http.StatusOK {
		t.Fatalf("reload = %d: %s", w.Code, w.Body.String())
	}
	if resp.Generation != 1 || resp.Fingerprint != fpB {
		t.Fatalf("reload response = %+v, want gen 1 fingerprint %s", resp, fpB)
	}

	doJSON(t, s, http.MethodGet, "/v1/meta", "", &meta)
	if meta.Fingerprint != fpB || meta.Generation != 1 {
		t.Fatalf("post-reload meta = %+v, want fingerprint %s gen 1", meta, fpB)
	}

	var stats StatsSnapshot
	doJSON(t, s, http.MethodGet, "/debug/stats", "", &stats)
	if stats.Reloads != 1 || stats.ReloadOK != 1 || stats.ReloadFailed != 0 {
		t.Errorf("stats = %d/%d/%d, want 1 attempt 1 ok 0 failed",
			stats.Reloads, stats.ReloadOK, stats.ReloadFailed)
	}
	if stats.Generation != 1 || stats.LastReload == nil || stats.LastReload.Outcome != "ok" {
		t.Errorf("stats reload state = gen %d lastReload %+v", stats.Generation, stats.LastReload)
	}
}

func TestReloadUnsupportedWithoutReloader(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	w := doJSON(t, s, http.MethodPost, "/v1/admin/reload", "", nil)
	if w.Code != http.StatusNotImplemented || errorCode(t, w) != "reload_unsupported" {
		t.Fatalf("reload without reloader = %d %q", w.Code, errorCode(t, w))
	}
	if w := doJSON(t, s, http.MethodGet, "/v1/admin/reload", "", nil); w.Code != http.StatusMethodNotAllowed {
		t.Fatalf("GET reload = %d, want 405", w.Code)
	}
}

func TestReloadFailureKeepsOldGeneration(t *testing.T) {
	s, ex := newTestServer(t, Config{})
	boom := errors.New("artifact store on fire")
	s.SetReloader(func(ctx context.Context) (*Snapshot, error) { return nil, boom })

	w := doJSON(t, s, http.MethodPost, "/v1/admin/reload", "", nil)
	if w.Code != http.StatusInternalServerError || errorCode(t, w) != "reload_failed" {
		t.Fatalf("failed reload = %d %q", w.Code, errorCode(t, w))
	}

	// The old generation must still serve, and the failure must be
	// visible in the stats without flipping readiness.
	var resp FeaturesResponse
	if w := doJSON(t, s, http.MethodPost, "/v1/features", `{"roots":[0]}`, &resp); w.Code != http.StatusOK {
		t.Fatalf("features after failed reload = %d", w.Code)
	}
	if got := s.Snapshot().Fingerprint; got != fingerprint(ex) {
		t.Errorf("serving fingerprint changed after failed reload: %s", got)
	}
	var stats StatsSnapshot
	doJSON(t, s, http.MethodGet, "/debug/stats", "", &stats)
	if stats.ReloadFailed != 1 || stats.LastReload == nil || stats.LastReload.Outcome != "failed" {
		t.Errorf("failure not recorded: %d failed, lastReload %+v", stats.ReloadFailed, stats.LastReload)
	}
	if w := doJSON(t, s, http.MethodGet, "/readyz", "", nil); w.Code != http.StatusOK {
		t.Errorf("readyz = %d after failed reload, want 200 (old generation still serves)", w.Code)
	}

	// A nil-snapshot reloader is a failure too, never a nil deref.
	s.SetReloader(func(ctx context.Context) (*Snapshot, error) { return &Snapshot{}, nil })
	if _, err := s.Reload(context.Background()); err == nil {
		t.Fatal("empty snapshot accepted")
	}
}

func TestReloadSingleFlight(t *testing.T) {
	s, _ := newTestServer(t, Config{})
	release := make(chan struct{})
	started := make(chan struct{})
	s.SetReloader(func(ctx context.Context) (*Snapshot, error) {
		close(started)
		<-release
		return nil, errors.New("slow failure")
	})

	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Reload(context.Background())
	}()
	<-started

	w := doJSON(t, s, http.MethodPost, "/v1/admin/reload", "", nil)
	if w.Code != http.StatusConflict || errorCode(t, w) != "reload_in_progress" {
		t.Fatalf("concurrent reload = %d %q, want 409 reload_in_progress", w.Code, errorCode(t, w))
	}
	close(release)
	<-done
}

// TestReloadUnderConcurrentLoad hammers /v1/features from many
// goroutines while reloads continuously swap between two generations.
// Zero requests may fail: every response must be a fully formed 200,
// and each must be internally consistent with exactly one generation
// (the RCU contract — a request never observes a mid-flight swap).
// Afterwards the goroutine count must return to baseline (no leaks from
// the reload path). Run with -race to check the swap discipline.
func TestReloadUnderConcurrentLoad(t *testing.T) {
	baseline := runtime.NumGoroutine()

	// Queue deep enough that admission never sheds: load-shedding 429s
	// would mask reload-induced failures.
	s, exA, exB := reloadableServer(t, Config{MaxInFlight: 8, MaxQueue: 1024})

	const (
		clients   = 8
		perClient = 40
	)
	var (
		wg      sync.WaitGroup
		failed  atomic.Int64
		served  atomic.Int64
		stopRel = make(chan struct{})
	)

	// Reload as fast as single-flight allows for the whole test.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stopRel:
				return
			default:
			}
			if _, err := s.Reload(context.Background()); err != nil && !errors.Is(err, ErrReloadInProgress) {
				t.Errorf("reload under load failed: %v", err)
				return
			}
		}
	}()

	var clientWG sync.WaitGroup
	for c := 0; c < clients; c++ {
		clientWG.Add(1)
		go func(c int) {
			defer clientWG.Done()
			for i := 0; i < perClient; i++ {
				var resp FeaturesResponse
				body := fmt.Sprintf(`{"roots":[%d,%d,%d]}`, i%20, (i+3)%20, (i+7)%20)
				w := doJSON(t, s, http.MethodPost, "/v1/features", body, &resp)
				if w.Code != http.StatusOK {
					failed.Add(1)
					t.Errorf("client %d req %d: status %d body %s", c, i, w.Code, w.Body.String())
					continue
				}
				if len(resp.Rows) != 3 {
					failed.Add(1)
					t.Errorf("client %d req %d: %d rows", c, i, len(resp.Rows))
					continue
				}
				// Every row of one response came from one snapshot: the
				// reply's fingerprint must be one of the two generations,
				// never empty or mixed garbage.
				if resp.Fingerprint != fingerprint(exA) && resp.Fingerprint != fingerprint(exB) {
					failed.Add(1)
					t.Errorf("client %d req %d: unknown fingerprint %q", c, i, resp.Fingerprint)
					continue
				}
				served.Add(1)
			}
		}(c)
	}
	clientWG.Wait()
	close(stopRel)
	wg.Wait()

	if failed.Load() != 0 {
		t.Fatalf("%d/%d requests failed during hot reload", failed.Load(), clients*perClient)
	}
	if served.Load() != clients*perClient {
		t.Fatalf("served %d, want %d", served.Load(), clients*perClient)
	}

	var stats StatsSnapshot
	doJSON(t, s, http.MethodGet, "/debug/stats", "", &stats)
	if stats.ReloadOK == 0 {
		t.Error("no reload completed during the load window")
	}
	t.Logf("served %d requests across %d reloads", served.Load(), stats.ReloadOK)

	// Goroutine-leak check: allow the runtime a moment to reap workers.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d > baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}
