package serve

import (
	"context"
	"errors"
)

// Admission errors.
var (
	// ErrShed: the wait queue is full; the request is rejected
	// immediately (HTTP 429 + Retry-After) instead of queueing
	// unboundedly.
	ErrShed = errors.New("serve: load shed, admission queue full")
	// ErrQueueTimeout: the request's deadline expired while it waited
	// for an extraction slot.
	ErrQueueTimeout = errors.New("serve: deadline expired in admission queue")
)

// admission is the bounded-concurrency gate in front of extraction: at
// most maxInFlight requests extract concurrently, at most maxQueue more
// wait for a slot, and everything beyond that is shed. Bounding both
// dimensions keeps memory and tail latency finite no matter the offered
// load — the queue can only ever hold maxQueue requests, so a hub-query
// storm turns into fast 429s rather than an unbounded goroutine pile-up.
type admission struct {
	slots    chan struct{} // buffered; len == in-flight requests
	queue    chan struct{} // buffered; len == waiting requests
	maxQueue int
}

func newAdmission(maxInFlight, maxQueue int) *admission {
	return &admission{
		slots:    make(chan struct{}, maxInFlight),
		queue:    make(chan struct{}, maxQueue),
		maxQueue: maxQueue,
	}
}

// acquire obtains an extraction slot. The fast path is non-blocking;
// otherwise the request joins the bounded wait queue until a slot frees
// or ctx expires. queuedFn fires (before blocking) iff the request had
// to queue, so callers can count queue entries. The returned release
// must be called exactly once.
func (a *admission) acquire(ctx context.Context, queuedFn func()) (release func(), err error) {
	select {
	case a.slots <- struct{}{}:
		return a.release, nil
	default:
	}
	// Slot pool exhausted: try to join the bounded queue.
	select {
	case a.queue <- struct{}{}:
	default:
		return nil, ErrShed
	}
	if queuedFn != nil {
		queuedFn()
	}
	defer func() { <-a.queue }()
	select {
	case a.slots <- struct{}{}:
		return a.release, nil
	case <-ctx.Done():
		return nil, ErrQueueTimeout
	}
}

func (a *admission) release() { <-a.slots }

// inFlight and queued report the current gauge values.
func (a *admission) inFlight() int { return len(a.slots) }
func (a *admission) queued() int   { return len(a.queue) }
