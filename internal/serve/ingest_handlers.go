package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"

	"hsgf/internal/graph"
	"hsgf/internal/ingest"
)

// SetIngestor wires a streaming-ingest engine into the server: POST
// /v1/ingest goes live, and every applied batch's published state is
// RCU-swapped into the serving snapshot. The publish hook runs while
// the engine's writer lock is held, so snapshot swaps arrive in strict
// sequence order — a slow older batch can never overwrite a newer one.
// source labels the snapshots for /v1/meta (e.g. "ingest:/var/lib/hsgf").
// Call before the server starts handling requests.
func (s *Server) SetIngestor(eng *ingest.Engine, source string) {
	s.ingest = eng
	// Ingest has its own single-writer admission gate so a write burst
	// and a read burst shed independently: MaxQueue writers may wait
	// (the engine serialises them anyway), the rest get 429.
	s.ingestAdm = newAdmission(1, s.cfg.MaxQueue)
	eng.SetPublish(func(res ingest.Result) {
		// A replayed ack republishes state the server is already serving
		// (the engine hands out the identical Extractor pointer, see
		// ingest.Engine.SetPublish); skipping the swap keeps the serving
		// epoch — and with it every cached feature row — intact, so a
		// duplicate-replay storm cannot flush the cache. A replay right
		// after recovery, when the server has not yet seen the engine's
		// state, still publishes.
		if cur := s.snap.Load(); res.Replayed && cur.Extractor == res.Extractor {
			return
		}
		// publish advances the cache epoch: the rows cached against the
		// pre-mutation snapshot die with it, so an acked batch can never
		// be shadowed by a stale cached row.
		s.publish(&Snapshot{
			Extractor:   res.Extractor,
			Features:    res.Features,
			Fingerprint: fingerprint(res.Extractor),
			Generation:  res.Generation,
			Source:      source,
		})
	})
}

// Ingesting reports whether a streaming-ingest engine is wired in.
func (s *Server) Ingesting() bool { return s.ingest != nil }

// SetFleetFollower puts /v1/ingest in follower mode: only
// router-sequenced fleet batches (fleet_seq set) are accepted, and
// direct client writes get 403 fleet_only. A shard daemon behind
// hsgf-router must run in this mode — a write that bypassed the
// sequencer would advance the shard without a fleet sequence and
// silently diverge it from the rest of the fleet. Call before the
// server starts handling requests.
func (s *Server) SetFleetFollower(on bool) { s.fleetFollower = on }

// FleetMaxRequestBody bounds the /v1/ingest body of a fleet-follower
// daemon. Router-sequenced sub-batches carry halo repair — a pulled
// node's full adjacency rides along — so they can legitimately outgrow
// the 1 MiB direct-client bound. The router enforces this same cap on
// every sub-batch BEFORE assigning a fleet sequence (see
// router.Config.MaxSubBatchBytes), so a sequenced batch is never
// rejected here for size; if it were, the rejection would latch the
// router fleet-failed and re-latch it on every boot replay.
const FleetMaxRequestBody = 8 << 20

// IngestMutation is the wire form of one mutation in POST /v1/ingest.
type IngestMutation struct {
	// Op is one of add_node, add_edge, remove_edge, relabel.
	Op string `json:"op"`
	// U, V are node IDs (edge endpoints; U alone for relabel).
	U int64 `json:"u,omitempty"`
	V int64 `json:"v,omitempty"`
	// Label is the label name for add_node and relabel.
	Label string `json:"label,omitempty"`
	// Name is the optional node name for add_node.
	Name string `json:"name,omitempty"`
}

// IngestRequest is the body of POST /v1/ingest.
type IngestRequest struct {
	// BatchID is the client's idempotency key: a batch re-sent with the
	// same ID (after a lost ack, a retry, a failover) is acknowledged
	// with its original sequence number, never applied twice.
	BatchID   string           `json:"batch_id"`
	Mutations []IngestMutation `json:"mutations"`

	// FleetSeq marks a router-sequenced sub-batch: the monotone fleet
	// sequence the router's sequencer WAL assigned this batch. It must
	// match the sequence encoded in BatchID (an ingest.FleetBatchID).
	// Zero means an ordinary client batch.
	FleetSeq uint64 `json:"fleet_seq,omitempty"`
	// PrevFleetSeq is the fleet sequence of the previous batch that
	// touched this shard (0 if this is the first). The shard applies a
	// fleet batch only when PrevFleetSeq equals its own watermark —
	// anything else is a gap: some earlier batch has not arrived here
	// yet, and applying out of order would corrupt the halo-maintenance
	// stream, so the shard refuses with 409 sequence_gap and reports its
	// watermark for the router to replay from.
	PrevFleetSeq uint64 `json:"prev_fleet_seq,omitempty"`
}

// IngestResponse is the body of a successful POST /v1/ingest. The
// response is sent only after the batch is durable (WAL fsync) and the
// updated feature state is serving.
type IngestResponse struct {
	Seq         uint64 `json:"seq"`
	Replayed    bool   `json:"replayed,omitempty"`
	DirtyRoots  int    `json:"dirty_roots"`
	NewColumns  int    `json:"new_columns,omitempty"`
	ElapsedMS   int64  `json:"elapsed_ms"`
	Generation  uint64 `json:"generation,omitempty"`
	Fingerprint string `json:"fingerprint"`
	// FleetWatermark is the shard's highest applied fleet sequence,
	// present on fleet-sequenced acks so the router can audit ordering.
	FleetWatermark uint64 `json:"fleet_watermark,omitempty"`
}

// IngestStatus is the freshness watermark block surfaced in
// /debug/stats, /readyz, and /v1/meta when ingest is enabled.
type IngestStatus struct {
	Enabled bool `json:"enabled"`
	// Failed reports a post-durability apply failure: the engine refuses
	// further batches until the daemon restarts and replays the WAL.
	Failed bool `json:"failed,omitempty"`
	// LastSeq is the last durably applied batch sequence.
	LastSeq uint64 `json:"last_seq"`
	// IngestToServeP50MS / P99MS measure Apply entry to snapshot swap —
	// how stale a just-acked mutation can be before reads see it.
	IngestToServeP50MS float64 `json:"ingest_to_serve_p50_ms"`
	IngestToServeP99MS float64 `json:"ingest_to_serve_p99_ms"`
	Applied            uint64  `json:"applied"`
	Replayed           uint64  `json:"replayed"`
	Rejected           uint64  `json:"rejected"`
	Compactions        uint64  `json:"compactions"`
	RecoveredRecords   uint64  `json:"recovered_records"`
	Generation         uint64  `json:"generation"`
	WALBytes           int64   `json:"wal_bytes"`
	LastDirtyRoots     int     `json:"last_dirty_roots"`
	MaxDirtyRoots      int     `json:"max_dirty_roots"`
}

// ingestStatus snapshots the engine counters; nil when ingest is off.
func (s *Server) ingestStatus() *IngestStatus {
	if s.ingest == nil {
		return nil
	}
	st := s.ingest.Stats()
	return &IngestStatus{
		Enabled:            true,
		Failed:             st.Failed,
		LastSeq:            st.LastSeq,
		IngestToServeP50MS: st.ApplyP50MS,
		IngestToServeP99MS: st.ApplyP99MS,
		Applied:            st.Applied,
		Replayed:           st.Replayed,
		Rejected:           st.Rejected,
		Compactions:        st.Compactions,
		RecoveredRecords:   st.RecoveredRecords,
		Generation:         st.Generation,
		WALBytes:           st.WALBytes,
		LastDirtyRoots:     st.LastDirtyRoots,
		MaxDirtyRoots:      st.MaxDirtyRoots,
	}
}

// handleIngest serves POST /v1/ingest: validate, admit (bounded write
// queue, 429 + Retry-After beyond it), apply through the WAL-backed
// engine, ack after durability. A daemon running without an ingest
// engine answers 501 with a machine-readable reason, mirroring the
// routing tier.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "method_not_allowed", "use POST", 0)
		return
	}
	if s.ingest == nil {
		s.writeError(w, http.StatusNotImplemented, "ingest_unsupported",
			"daemon was started without streaming ingest (-ingest)", 0)
		return
	}
	if s.draining.Load() {
		s.stats.drained.Add(1)
		s.writeError(w, http.StatusServiceUnavailable, "draining", "server is draining", s.cfg.RetryAfter)
		return
	}

	// Fleet followers accept the router's larger sub-batch bound; the
	// router guarantees sequenced sub-batches fit it. Direct-client
	// daemons keep the tight bound.
	bodyLimit := int64(maxRequestBody)
	if s.fleetFollower {
		bodyLimit = FleetMaxRequestBody
	}
	var req IngestRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, bodyLimit))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.stats.badReq.Add(1)
		s.writeError(w, http.StatusBadRequest, "bad_request", "invalid JSON body: "+err.Error(), 0)
		return
	}
	if req.BatchID == "" || len(req.BatchID) > graph.MaxBatchID {
		s.stats.badReq.Add(1)
		s.writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("batch_id must be 1-%d bytes", graph.MaxBatchID), 0)
		return
	}
	if len(req.Mutations) == 0 {
		s.stats.badReq.Add(1)
		s.writeError(w, http.StatusBadRequest, "bad_request", "mutations must not be empty", 0)
		return
	}
	if req.FleetSeq != 0 {
		// A fleet sub-batch's idempotency key IS its fleet identity: the
		// sequence must be woven into the batch ID, or a duplicate under a
		// different ID would dodge the replay index and apply twice.
		if seq, ok := ingest.ParseFleetSeq(req.BatchID); !ok || seq != req.FleetSeq {
			s.stats.badReq.Add(1)
			s.writeError(w, http.StatusBadRequest, "bad_request",
				fmt.Sprintf("fleet_seq %d does not match the sequence encoded in batch_id %q", req.FleetSeq, req.BatchID), 0)
			return
		}
		if req.PrevFleetSeq >= req.FleetSeq {
			s.stats.badReq.Add(1)
			s.writeError(w, http.StatusBadRequest, "bad_request",
				"prev_fleet_seq must be strictly below fleet_seq", 0)
			return
		}
	} else if s.fleetFollower {
		s.stats.badReq.Add(1)
		s.writeError(w, http.StatusForbidden, "fleet_only",
			"this shard applies router-sequenced batches only; send writes to hsgf-router", 0)
		return
	}
	muts := make([]graph.Mutation, len(req.Mutations))
	for i, m := range req.Mutations {
		op, err := graph.ParseMutationOp(m.Op)
		if err != nil {
			s.stats.badReq.Add(1)
			s.writeError(w, http.StatusBadRequest, "bad_mutation",
				fmt.Sprintf("mutation %d: %v", i, err), 0)
			return
		}
		// graph.NodeID is int32; an out-of-range int64 would wrap into a
		// valid-looking node ID and the batch would mutate the wrong node,
		// so reject before converting.
		if m.U < 0 || m.U > math.MaxInt32 || m.V < 0 || m.V > math.MaxInt32 {
			s.stats.badReq.Add(1)
			s.writeError(w, http.StatusBadRequest, "bad_mutation",
				fmt.Sprintf("mutation %d: node ids must be in [0, %d]", i, math.MaxInt32), 0)
			return
		}
		muts[i] = graph.Mutation{Op: op, U: graph.NodeID(m.U), V: graph.NodeID(m.V), Label: m.Label, Name: m.Name}
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.requestDeadline(0))
	defer cancel()

	// Bounded write admission: the engine is single-writer, so this gate
	// turns sustained write pressure into fast 429s with a backoff hint
	// instead of an unbounded convoy on the engine mutex.
	release, err := s.ingestAdm.acquire(ctx, func() { s.stats.queued.Add(1) })
	if err != nil {
		s.stats.shed.Add(1)
		if err == ErrShed {
			s.writeError(w, http.StatusTooManyRequests, "shed", "ingest queue full", s.cfg.RetryAfter)
		} else {
			s.writeError(w, http.StatusServiceUnavailable, "queue_timeout",
				"deadline expired waiting for the ingest writer", s.cfg.RetryAfter)
		}
		return
	}
	defer release()

	if req.FleetSeq != 0 {
		// Ordering gate, race-free inside the single-writer admission slot:
		// nothing else can advance the watermark between this check and the
		// Apply below.
		wm := s.ingest.FleetWatermark()
		switch {
		case req.FleetSeq <= wm:
			// At or below the watermark: strictly ordered application means
			// this batch was already applied here. If its ID has been
			// evicted from the replay index, re-applying would double-apply
			// (and fail validation on e.g. a duplicate edge), so ack bare;
			// otherwise fall through and let the engine produce the full
			// replayed ack.
			if !s.ingest.HasApplied(req.BatchID) {
				snap := s.snap.Load()
				s.writeJSON(w, http.StatusOK, IngestResponse{
					Replayed:       true,
					Generation:     snap.Generation,
					Fingerprint:    snap.Fingerprint,
					FleetWatermark: wm,
				})
				return
			}
		case req.PrevFleetSeq != wm:
			// Gap: a predecessor has not arrived. Refuse — applying out of
			// order would corrupt the halo-maintenance stream — and report
			// the watermark so the router replays everything after it from
			// its sequencer log.
			s.writeErrorExtra(w, http.StatusConflict, "sequence_gap",
				fmt.Sprintf("fleet seq %d claims predecessor %d but this shard's watermark is %d",
					req.FleetSeq, req.PrevFleetSeq, wm), 0,
				map[string]any{"watermark": wm})
			return
		}
	}

	res, err := s.ingest.Apply(ctx, req.BatchID, muts)
	switch {
	case err == nil:
	case errors.Is(err, ingest.ErrBatchInvalid):
		s.stats.badReq.Add(1)
		s.writeError(w, http.StatusBadRequest, "bad_mutation", err.Error(), 0)
		return
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		s.writeError(w, http.StatusServiceUnavailable, "queue_timeout",
			"deadline expired before the batch reached the log", s.cfg.RetryAfter)
		return
	default:
		// Durability-layer failure (WAL write, snapshot IO): the batch
		// was NOT acked and the client must retry with the same batch ID.
		s.writeError(w, http.StatusInternalServerError, "ingest_failed", err.Error(), 0)
		return
	}

	snap := s.snap.Load()
	out := IngestResponse{
		Seq:         res.Seq,
		Replayed:    res.Replayed,
		DirtyRoots:  len(res.DirtyRoots),
		NewColumns:  res.NewColumns,
		ElapsedMS:   res.Elapsed.Milliseconds(),
		Generation:  res.Generation,
		Fingerprint: snap.Fingerprint,
	}
	if req.FleetSeq != 0 {
		out.FleetWatermark = s.ingest.FleetWatermark()
	}
	s.writeJSON(w, http.StatusOK, out)
}
