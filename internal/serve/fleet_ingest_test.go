package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"

	"hsgf/internal/ingest"
)

// fleetBody builds a fleet-sequenced ingest request adding one edge.
func fleetBody(seq, prev uint64, u, v int) string {
	return fmt.Sprintf(`{"batch_id":%q,"fleet_seq":%d,"prev_fleet_seq":%d,"mutations":[{"op":"add_edge","u":%d,"v":%d}]}`,
		ingest.FleetBatchID(seq, "c"), seq, prev, u, v)
}

// TestFleetIngestOrderingProtocol drives the shard-side half of the
// fleet protocol: in-order batches apply, a gap is refused with 409 +
// the shard's watermark, the missing batch repairs the gap, and the
// refused batch then applies.
func TestFleetIngestOrderingProtocol(t *testing.T) {
	s, eng := newIngestServer(t, Config{})
	s.SetFleetFollower(true)

	var res IngestResponse
	w := doJSON(t, s, http.MethodPost, "/v1/ingest", fleetBody(1, 0, 0, 2), &res)
	if w.Code != http.StatusOK || res.FleetWatermark != 1 {
		t.Fatalf("seq 1: status %d watermark %d (%s)", w.Code, res.FleetWatermark, w.Body.String())
	}

	// Seq 3 before seq 2: refused, watermark reported.
	w = doJSON(t, s, http.MethodPost, "/v1/ingest", fleetBody(3, 2, 0, 4), nil)
	if w.Code != http.StatusConflict {
		t.Fatalf("gap: status %d, want 409 (%s)", w.Code, w.Body.String())
	}
	var gap struct {
		Reason    string `json:"reason"`
		Watermark uint64 `json:"watermark"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &gap); err != nil {
		t.Fatal(err)
	}
	if gap.Reason != "sequence_gap" || gap.Watermark != 1 {
		t.Fatalf("gap body = %+v, want sequence_gap at watermark 1", gap)
	}
	if eng.FleetWatermark() != 1 {
		t.Fatalf("refused batch moved the engine watermark to %d", eng.FleetWatermark())
	}

	// Replay the missing seq 2, then seq 3 goes through.
	for seq := uint64(2); seq <= 3; seq++ {
		res = IngestResponse{}
		w = doJSON(t, s, http.MethodPost, "/v1/ingest", fleetBody(seq, seq-1, 0, int(seq+1)), &res)
		if w.Code != http.StatusOK || res.FleetWatermark != seq {
			t.Fatalf("seq %d after repair: status %d watermark %d (%s)", seq, w.Code, res.FleetWatermark, w.Body.String())
		}
	}
}

// TestFleetFollowerAcceptsLargeSubBatch: a fleet follower takes
// router-sequenced sub-batch bodies up to FleetMaxRequestBody — halo
// repair can push a sub-batch well past the 1 MiB direct-client bound —
// while a direct-mode daemon keeps rejecting the same payload size. The
// raised bound is load-bearing: the router refuses oversized client
// batches against THIS limit before sequencing, so a follower rejecting
// a sequenced sub-batch for size (which would latch the router failed
// on every boot replay) must be impossible.
func TestFleetFollowerAcceptsLargeSubBatch(t *testing.T) {
	// ~1.3 MiB of add_node mutations: over the direct bound, under the
	// fleet one.
	var muts []string
	for i := 0; i < 320; i++ {
		muts = append(muts, fmt.Sprintf(`{"op":"add_node","label":"loc","name":%q}`, strings.Repeat("n", 4096)))
	}
	payload := "[" + strings.Join(muts, ",") + "]"

	follower, eng := newIngestServer(t, Config{})
	follower.SetFleetFollower(true)
	body := fmt.Sprintf(`{"batch_id":%q,"fleet_seq":1,"mutations":%s}`, ingest.FleetBatchID(1, "c"), payload)
	if len(body) <= 1<<20 {
		t.Fatalf("test body only %d bytes; must exceed the 1 MiB direct bound", len(body))
	}
	var res IngestResponse
	if w := doJSON(t, follower, http.MethodPost, "/v1/ingest", body, &res); w.Code != http.StatusOK || res.FleetWatermark != 1 {
		t.Fatalf("follower large sub-batch: status %d watermark %d (%.200s)", w.Code, res.FleetWatermark, w.Body.String())
	}
	if eng.FleetWatermark() != 1 {
		t.Fatalf("engine watermark %d after large sub-batch, want 1", eng.FleetWatermark())
	}

	direct, _ := newIngestServer(t, Config{})
	directBody := fmt.Sprintf(`{"batch_id":"big","mutations":%s}`, payload)
	if w := doJSON(t, direct, http.MethodPost, "/v1/ingest", directBody, nil); w.Code != http.StatusBadRequest {
		t.Fatalf("direct daemon accepted a %d-byte body: status %d, want 400", len(directBody), w.Code)
	}
}

// TestFleetIngestDuplicatesAckWithoutReapplying covers both replay
// shapes: a duplicate still in the replay index acks via the engine,
// and a duplicate below the watermark whose ID was evicted acks bare —
// neither touches graph state.
func TestFleetIngestDuplicatesAckWithoutReapplying(t *testing.T) {
	s, eng := newIngestServer(t, Config{})
	s.SetFleetFollower(true)
	for seq := uint64(1); seq <= 3; seq++ {
		w := doJSON(t, s, http.MethodPost, "/v1/ingest", fleetBody(seq, seq-1, 0, int(seq+1)), nil)
		if w.Code != http.StatusOK {
			t.Fatalf("seq %d: %d %s", seq, w.Code, w.Body.String())
		}
	}
	g, _, _, _, _ := eng.State()
	edges := g.NumEdges()

	// Duplicate of seq 2 (still indexed): engine replay ack.
	var res IngestResponse
	w := doJSON(t, s, http.MethodPost, "/v1/ingest", fleetBody(2, 1, 0, 3), &res)
	if w.Code != http.StatusOK || !res.Replayed || res.Seq != 2 {
		t.Fatalf("indexed duplicate: status %d %+v", w.Code, res)
	}

	// Duplicate of seq 2 under a batch ID the index never saw (models
	// eviction): the watermark alone proves it was applied; bare ack.
	body := fmt.Sprintf(`{"batch_id":%q,"fleet_seq":2,"prev_fleet_seq":1,"mutations":[{"op":"add_edge","u":0,"v":3}]}`,
		ingest.FleetBatchID(2, "other-client"))
	res = IngestResponse{}
	w = doJSON(t, s, http.MethodPost, "/v1/ingest", body, &res)
	if w.Code != http.StatusOK || !res.Replayed || res.Seq != 0 || res.FleetWatermark != 3 {
		t.Fatalf("evicted duplicate: status %d %+v", w.Code, res)
	}

	if g2, _, _, _, _ := eng.State(); g2.NumEdges() != edges {
		t.Fatalf("duplicates changed the graph: %d -> %d edges", edges, g2.NumEdges())
	}
}

// TestFleetFollowerRejectsDirectWrites: a shard behind the router must
// not accept unsequenced client batches — they would diverge it from
// the fleet.
func TestFleetFollowerRejectsDirectWrites(t *testing.T) {
	s, _ := newIngestServer(t, Config{})
	s.SetFleetFollower(true)
	w := doJSON(t, s, http.MethodPost, "/v1/ingest",
		`{"batch_id":"direct","mutations":[{"op":"add_edge","u":0,"v":2}]}`, nil)
	if w.Code != http.StatusForbidden {
		t.Fatalf("direct write: status %d, want 403 (%s)", w.Code, w.Body.String())
	}
	if got := errorCode(t, w); got != "fleet_only" {
		t.Fatalf("reason = %q, want fleet_only", got)
	}
}

// TestFleetIngestRejectsMismatchedFrame: fleet_seq must be the sequence
// woven into batch_id, and prev must precede it.
func TestFleetIngestRejectsMismatchedFrame(t *testing.T) {
	s, _ := newIngestServer(t, Config{})
	cases := []string{
		// fleet_seq contradicts batch_id.
		fmt.Sprintf(`{"batch_id":%q,"fleet_seq":2,"mutations":[{"op":"add_edge","u":0,"v":2}]}`, ingest.FleetBatchID(1, "c")),
		// plain batch_id with a fleet_seq.
		`{"batch_id":"plain","fleet_seq":1,"mutations":[{"op":"add_edge","u":0,"v":2}]}`,
		// prev >= seq.
		fmt.Sprintf(`{"batch_id":%q,"fleet_seq":2,"prev_fleet_seq":2,"mutations":[{"op":"add_edge","u":0,"v":2}]}`, ingest.FleetBatchID(2, "c")),
	}
	for i, body := range cases {
		w := doJSON(t, s, http.MethodPost, "/v1/ingest", body, nil)
		if w.Code != http.StatusBadRequest {
			t.Errorf("case %d: status %d, want 400 (%s)", i, w.Code, w.Body.String())
		}
	}
}

// TestReadyzReportsIngestFailed (satellite): a latched-failed engine
// must flip /readyz to 503 with a machine-readable reason so the shard
// drops out of router rotation, not just a flag in /debug/stats.
func TestReadyzReportsIngestFailed(t *testing.T) {
	s, eng := newIngestServer(t, Config{})
	w := doJSON(t, s, http.MethodGet, "/readyz", "", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("healthy readyz = %d", w.Code)
	}

	eng.LatchFailure()
	w = doJSON(t, s, http.MethodGet, "/readyz", "", nil)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("failed-engine readyz = %d, want 503 (%s)", w.Code, w.Body.String())
	}
	var body struct {
		Status string `json:"status"`
		Reason string `json:"reason"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "unready" || body.Reason != "ingest_failed" {
		t.Fatalf("readyz body = %+v, want unready/ingest_failed", body)
	}
}
