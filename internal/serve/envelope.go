package serve

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"
)

// WriteJSONError writes the fleet-standard typed error envelope. Both
// tiers — hsgfd's serving layer and hsgf-router — emit every non-200
// response through this one helper so the shape cannot drift: a nested
// error object, the stable top-level "reason" automation keys on, and a
// Retry-After header (integral seconds, sub-second hints held up to 1)
// mirrored with millisecond precision in "retry_after_ms" whenever the
// error is retryable.
//
// extra carries endpoint-specific machine-readable fields — the fleet
// ingest protocol's "watermark" first among them — merged into the top
// level of the body. Keys that collide with the envelope's own fields
// are ignored.
//
// The returned error reports an encode failure (client gone
// mid-response); callers that track write failures count it, others may
// discard it.
func WriteJSONError(w http.ResponseWriter, status int, code, message string, retryAfter time.Duration, extra map[string]any) error {
	detail := ErrorDetail{Code: code, Message: message}
	if retryAfter > 0 {
		secs := int64(retryAfter.Seconds())
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
		detail.RetryAfterMS = retryAfter.Milliseconds()
	}
	body := map[string]any{
		"error":  detail,
		"reason": code,
	}
	if detail.RetryAfterMS > 0 {
		body["retry_after_ms"] = detail.RetryAfterMS
	}
	for k, v := range extra {
		if _, taken := body[k]; !taken {
			body[k] = v
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	return json.NewEncoder(w).Encode(body)
}
