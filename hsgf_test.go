package hsgf

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

func buildExampleGraph(t *testing.T) (*Graph, []NodeID) {
	t.Helper()
	b := NewBuilder()
	var nodes []NodeID
	// Two institutions, three authors, two papers.
	i1, _ := b.AddNode("institution")
	i2, _ := b.AddNode("institution")
	a1, _ := b.AddNode("author")
	a2, _ := b.AddNode("author")
	a3, _ := b.AddNode("author")
	p1, _ := b.AddNode("paper")
	p2, _ := b.AddNode("paper")
	for _, e := range [][2]NodeID{{i1, a1}, {i1, a2}, {i2, a3}, {a1, p1}, {a2, p1}, {a3, p1}, {a3, p2}, {p1, p2}} {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	nodes = append(nodes, i1, i2, a1, a2, a3, p1, p2)
	return g, nodes
}

func TestFacadeEndToEnd(t *testing.T) {
	g, nodes := buildExampleGraph(t)
	if g.NumLabels() != 3 || g.NumNodes() != 7 {
		t.Fatalf("unexpected example graph %v", g)
	}

	x, vocab, ex, err := ExtractFeatures(g, nodes, Options{MaxEdges: 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(x) != len(nodes) {
		t.Fatalf("rows = %d, want %d", len(x), len(nodes))
	}
	if vocab.Len() == 0 {
		t.Fatal("empty vocabulary")
	}
	if len(x[0]) != vocab.Len() {
		t.Fatal("matrix width mismatch")
	}
	// Every column decodes to a readable encoding.
	for c := 0; c < vocab.Len(); c++ {
		enc := ex.EncodingString(vocab.Key(c))
		if enc == "" || enc[0] == '?' {
			t.Errorf("column %d does not decode: %q", c, enc)
		}
	}
}

func TestFacadeTSVRoundTrip(t *testing.T) {
	g, _ := buildExampleGraph(t)
	var buf bytes.Buffer
	if err := WriteTSV(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadTSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatal("round trip mismatch")
	}
}

func TestFacadeHelpers(t *testing.T) {
	g, _ := buildExampleGraph(t)
	lc := LabelConnectivityOf(g)
	if !lc.HasSelfLoop() {
		t.Error("paper-paper citation edge should induce a self loop")
	}
	if d := DegreePercentile(g, 1.0); d != g.MaxDegree() {
		t.Errorf("p100 degree %d != max %d", d, g.MaxDegree())
	}
	opts := DefaultOptions()
	if opts.MaxEdges != 5 || !opts.MaskRootLabel {
		t.Errorf("DefaultOptions = %+v does not match the paper", opts)
	}
	if _, err := NewAlphabet("a", "a"); err == nil {
		t.Error("duplicate alphabet names must fail")
	}
	if v := NewVocabulary(); v.Len() != 0 {
		t.Error("new vocabulary not empty")
	}
}

func TestFacadeFeatureSetRoundTrip(t *testing.T) {
	g, nodes := buildExampleGraph(t)
	ex, err := NewExtractor(g, Options{MaxEdges: 3})
	if err != nil {
		t.Fatal(err)
	}
	censuses := ex.CensusAll(nodes, 2)
	vocab := VocabularyOf(censuses)
	fs, err := NewFeatureSet(ex, censuses, vocab)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := fs.Write(&buf); err != nil {
		t.Fatal(err)
	}
	fs2, err := ReadFeatureSet(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs2.Features) != vocab.Len() || len(fs2.Rows) != len(nodes) {
		t.Fatalf("round trip shape mismatch: %d features %d rows", len(fs2.Features), len(fs2.Rows))
	}
	dense := fs2.Dense()
	want := Matrix(censuses, vocab)
	for i := range dense {
		for j := range dense[i] {
			if dense[i][j] != want[i][j] {
				t.Fatal("Dense disagrees with Matrix")
			}
		}
	}
}

func TestFacadeSamplingHelpers(t *testing.T) {
	g, nodes := buildExampleGraph(t)
	rng := rand.New(rand.NewSource(1))
	sample := SampleRoots(g, 1, rng)
	if len(sample) != g.NumLabels() {
		t.Fatalf("sampled %d roots, want one per label (%d)", len(sample), g.NumLabels())
	}
	kept := FilterRootsByDegree(g, nodes, 0.99)
	if len(kept) >= len(nodes) {
		t.Error("degree filter should drop the top-degree node")
	}
}

func TestFacadeTypedAPI(t *testing.T) {
	b := NewTypedBuilder(true)
	if err := b.DeclareEdgeLabels("cites"); err != nil {
		t.Fatal(err)
	}
	u, _ := b.AddNode("p")
	v, _ := b.AddNode("p")
	if err := b.AddEdge(u, v, "cites"); err != nil {
		t.Fatal(err)
	}
	tg, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	ex, err := NewTypedExtractor(tg, TypedOptions{MaxEdges: 1})
	if err != nil {
		t.Fatal(err)
	}
	c := ex.Census(u)
	if c.Subgraphs != 1 {
		t.Errorf("typed census = %d subgraphs, want 1", c.Subgraphs)
	}

	// Lifting an undirected graph preserves censuses.
	g, nodes := buildExampleGraph(t)
	lifted, err := FromUndirected(g, "edge")
	if err != nil {
		t.Fatal(err)
	}
	plain, _ := NewExtractor(g, Options{MaxEdges: 2})
	typedEx, _ := NewTypedExtractor(lifted, TypedOptions{MaxEdges: 2})
	for _, v := range nodes {
		if plain.Census(v).Subgraphs != typedEx.Census(v).Subgraphs {
			t.Fatalf("typed lift changes census totals at node %d", v)
		}
	}
}

func ExampleExtractFeatures() {
	// Single-character label names render in the paper's compact
	// encoding notation (e.g. "p100a010").
	b := NewBuilder()
	alice, _ := b.AddNode("a") // author
	paper, _ := b.AddNode("p") // paper
	venue, _ := b.AddNode("v") // venue
	b.AddEdge(alice, paper)
	b.AddEdge(paper, venue)
	g, _ := b.Build()

	x, vocab, ex, _ := ExtractFeatures(g, []NodeID{alice}, Options{MaxEdges: 2}, 1)
	fmt.Println("features:", vocab.Len())
	lines := make([]string, vocab.Len())
	for c := 0; c < vocab.Len(); c++ {
		lines[c] = fmt.Sprintf("%s -> %.0f", ex.EncodingString(vocab.Key(c)), x[0][c])
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Println(l)
	}
	// Output:
	// features: 2
	// p100a010 -> 1
	// v010p101a010 -> 1
}
