// Benchmarks regenerating every table and figure of the paper's
// evaluation section (see DESIGN.md §3 for the experiment index), plus
// ablation benchmarks for the design choices of §3.2. Each benchmark runs
// a reduced-scale but protocol-faithful version of its experiment and
// reports the headline quality metric alongside the timing, so a single
//
//	go test -bench=. -benchmem
//
// sweep reproduces the comparison shape of the whole evaluation. The
// full-scale tables are produced by the cmd/rankbench, cmd/labelbench,
// cmd/runtimebench and cmd/isoaudit tools.
package hsgf_test

import (
	"context"
	"math/rand"
	"testing"

	"hsgf"
	"hsgf/internal/core"
	"hsgf/internal/datagen"
	"hsgf/internal/embed"
	"hsgf/internal/experiments"
	"hsgf/internal/graph"
	"hsgf/internal/iso"
	"hsgf/internal/motif"
	"hsgf/internal/typed"
)

// benchRankConfig is the reduced rank-prediction configuration shared by
// the Figure 3 / Table 1 / Figure 4 benchmarks.
func benchRankConfig() experiments.RankConfig {
	cfg := experiments.DefaultRankConfig()
	cfg.Publication.Institutions = 30
	cfg.Publication.Conferences = []string{"KDD", "ICML"}
	cfg.Publication.Years = []int{2010, 2011, 2012, 2013, 2014}
	cfg.Publication.PapersPerConfYear = 15
	cfg.Publication.ExternalPapers = 120
	cfg.MaxEdges = 3
	cfg.EmbedDim = 16
	cfg.Walks = embed.WalkConfig{WalksPerNode: 3, WalkLength: 10, ReturnP: 1, InOutQ: 1}
	cfg.SGNS = embed.SGNSConfig{Dim: 16, Window: 4, Negatives: 3, Epochs: 1}
	cfg.LINESamplesX = 5
	cfg.ForestTrees = 50
	return cfg
}

func benchLabelConfig() experiments.LabelConfig {
	cfg := experiments.DefaultLabelConfig()
	cfg.PerLabel = 40
	cfg.MaxEdges = 3
	cfg.EmbedDim = 16
	cfg.Walks = embed.WalkConfig{WalksPerNode: 3, WalkLength: 10, ReturnP: 1, InOutQ: 1}
	cfg.SGNS = embed.SGNSConfig{Dim: 16, Window: 4, Negatives: 3, Epochs: 1}
	cfg.LINESamplesX = 5
	cfg.Repeats = 5
	cfg.TrainFracs = []float64{0.1, 0.5, 0.9}
	cfg.Removals = []float64{0, 0.25, 0.5, 0.75}
	cfg.DmaxLevels = []float64{0.90, 0.94, 0.98}
	return cfg
}

func benchLabelGraph(b *testing.B) *graph.Graph {
	b.Helper()
	cfg := datagen.DefaultCooccurrenceConfig()
	cfg.Locations, cfg.Organizations, cfg.Actors, cfg.Dates = 120, 100, 200, 80
	cfg.Documents = 1200
	co, err := datagen.GenerateCooccurrence(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return co.Graph
}

// BenchmarkFigure3RankPrediction regenerates Figure 3: NDCG@20 of all
// six feature families under the four regressors, per conference. It
// reports the subgraph-features random-forest score (the paper's
// headline cell) and the embedding gap.
func BenchmarkFigure3RankPrediction(b *testing.B) {
	cfg := benchRankConfig()
	var res *experiments.RankResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.RunRank(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	avg := res.Average()
	b.ReportMetric(avg[experiments.FamSubgraph][experiments.RegForest], "ndcg-subgraph-rf")
	b.ReportMetric(avg[experiments.FamClassic][experiments.RegForest], "ndcg-classic-rf")
	b.ReportMetric(avg[experiments.FamDeepWalk][experiments.RegForest], "ndcg-deepwalk-rf")
}

// BenchmarkTable1AverageNDCG regenerates Table 1: the cross-conference
// NDCG averages per feature family and regressor.
func BenchmarkTable1AverageNDCG(b *testing.B) {
	cfg := benchRankConfig()
	res, err := experiments.RunRank(context.Background(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var avg map[string]map[string]float64
	for i := 0; i < b.N; i++ {
		avg = res.Average()
	}
	b.ReportMetric(avg[experiments.FamSubgraph][experiments.RegBayRidge], "ndcg-subgraph-bayridge")
	b.ReportMetric(avg[experiments.FamCombined][experiments.RegForest], "ndcg-combined-rf")
}

// BenchmarkFigure4FeatureImportance regenerates Figure 4: the
// most-discriminative-subgraph analysis via random-forest importances.
func BenchmarkFigure4FeatureImportance(b *testing.B) {
	cfg := benchRankConfig()
	cfg.Publication.Conferences = []string{"KDD"}
	var res *experiments.RankResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.RunRank(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	tops := res.TopSubgraphs["KDD"]
	if len(tops) == 0 {
		b.Fatal("no top subgraphs")
	}
	b.ReportMetric(tops[0].Importance, "top-importance")
}

// BenchmarkTable2DmaxSweep regenerates Table 2: Macro F1 of the
// subgraph features across maximum-degree percentile levels on the dense
// co-occurrence network.
func BenchmarkTable2DmaxSweep(b *testing.B) {
	g := benchLabelGraph(b)
	cfg := benchLabelConfig()
	b.ResetTimer()
	var pts []experiments.CurvePoint
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = experiments.DmaxSweep(g, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[0].Mean, "f1-at-p90")
	b.ReportMetric(pts[len(pts)-1].Mean, "f1-at-top-level")
}

// BenchmarkTable3Runtime regenerates Table 3: the per-node census time
// distribution versus the amortised embedding costs.
func BenchmarkTable3Runtime(b *testing.B) {
	g := benchLabelGraph(b)
	cfg := benchLabelConfig()
	cfg.PerLabel = 15
	b.ResetTimer()
	var row *experiments.RuntimeRow
	var err error
	for i := 0; i < b.N; i++ {
		row, err = experiments.MeasureRuntime(context.Background(), "LOAD", g, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(row.SubgraphMean.Seconds()*1e3, "census-ms/node")
	b.ReportMetric(row.DeepWalkMean.Seconds()*1e3, "deepwalk-ms/node")
}

// BenchmarkFigure5TrainingSize regenerates Figure 5 A-C: Macro F1 of
// subgraph features versus the three embeddings across training sizes.
func BenchmarkFigure5TrainingSize(b *testing.B) {
	g := benchLabelGraph(b)
	cfg := benchLabelConfig()
	b.ResetTimer()
	var curves map[string][]experiments.CurvePoint
	var err error
	for i := 0; i < b.N; i++ {
		curves, err = experiments.TrainingSizeCurves(context.Background(), g, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := len(cfg.TrainFracs) - 1
	b.ReportMetric(curves[experiments.FamSubgraph][last].Mean, "f1-subgraph")
	b.ReportMetric(curves[experiments.FamLINE][last].Mean, "f1-line")
	b.ReportMetric(curves[experiments.FamDeepWalk][last].Mean, "f1-deepwalk")
}

// BenchmarkFigure5LabelRemoval regenerates Figure 5 D-F: Macro F1 as
// node labels are progressively removed.
func BenchmarkFigure5LabelRemoval(b *testing.B) {
	g := benchLabelGraph(b)
	cfg := benchLabelConfig()
	b.ResetTimer()
	var curves map[string][]experiments.CurvePoint
	var err error
	for i := 0; i < b.N; i++ {
		curves, err = experiments.LabelRemovalCurves(context.Background(), g, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	pts := curves[experiments.FamSubgraph]
	b.ReportMetric(pts[0].Mean, "f1-all-labels")
	b.ReportMetric(pts[len(pts)-1].Mean, "f1-75pct-removed")
}

// BenchmarkEncodingCollisionAudit regenerates the §3.1 uniqueness-bound
// audit (Figure 1C): exhaustive enumeration up to 5 edges in the loopy
// regime.
func BenchmarkEncodingCollisionAudit(b *testing.B) {
	var bound int
	for i := 0; i < b.N; i++ {
		bound, _ = iso.MaxUniqueEdges(5, 1, false)
	}
	if bound != 4 {
		b.Fatalf("loopy uniqueness bound = %d, want 4", bound)
	}
	b.ReportMetric(float64(bound), "emax-unique-loopy")
}

// --- Ablation benchmarks (DESIGN.md E9) -----------------------------

// ablationGraph is a dense-ish labelled graph exercising the census hot
// path.
func ablationGraph(b *testing.B) (*graph.Graph, []graph.NodeID) {
	b.Helper()
	rng := rand.New(rand.NewSource(123))
	gb := graph.NewBuilderWithAlphabet(graph.MustAlphabet("a", "b", "c"))
	n := 300
	for i := 0; i < n; i++ {
		gb.AddLabeledNode(graph.Label(rng.Intn(3)))
	}
	for u := 0; u < n; u++ {
		for k := 0; k < 6; k++ {
			v := rng.Intn(n)
			if v != u {
				gb.AddEdge(graph.NodeID(u), graph.NodeID(v))
			}
		}
	}
	g := gb.MustBuild()
	roots := make([]graph.NodeID, 40)
	for i := range roots {
		roots[i] = graph.NodeID(i)
	}
	return g, roots
}

func benchCensus(b *testing.B, opts core.Options) {
	g, roots := ablationGraph(b)
	ex, err := core.NewExtractor(g, opts)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var total int64
	for i := 0; i < b.N; i++ {
		total = 0
		for _, c := range ex.CensusAll(roots, 1) {
			total += c.Subgraphs
		}
	}
	b.ReportMetric(float64(total)/float64(len(roots)), "subgraphs/node")
}

// BenchmarkAblationRollingHash measures the census with the paper's
// incremental rolling hash (the contribution of §3.2's hashing
// optimization)...
func BenchmarkAblationRollingHash(b *testing.B) {
	benchCensus(b, core.Options{MaxEdges: 4})
}

// BenchmarkAblationCanonicalString ...against the baseline that
// materialises and hashes the canonical sequence at every emission.
func BenchmarkAblationCanonicalString(b *testing.B) {
	benchCensus(b, core.Options{MaxEdges: 4, KeyMode: core.CanonicalString})
}

// BenchmarkAblationLeafBatching measures the census with the
// heterogeneous optimization heuristic (same-label leaf attachments
// counted in one step)...
func BenchmarkAblationLeafBatching(b *testing.B) {
	benchCensus(b, core.Options{MaxEdges: 4})
}

// BenchmarkAblationNoLeafBatching ...against per-leaf counting.
func BenchmarkAblationNoLeafBatching(b *testing.B) {
	benchCensus(b, core.Options{MaxEdges: 4, DisableLeafBatching: true})
}

// BenchmarkAblationEmaxQuality measures the quality side of the emax
// trade-off (§3.1: larger subgraphs are more discriminative): Macro F1
// of the label-prediction protocol per edge budget.
func BenchmarkAblationEmaxQuality(b *testing.B) {
	g := benchLabelGraph(b)
	cfg := benchLabelConfig()
	cfg.EmaxValues = []int{2, 3, 4}
	b.ResetTimer()
	var pts []experiments.CurvePoint
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = experiments.EmaxSweep(g, cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(pts[0].Mean, "f1-emax2")
	b.ReportMetric(pts[len(pts)-1].Mean, "f1-emax4")
}

// BenchmarkMotifGlobalCensus measures the §2 comparator: the global
// ESU census of all size-3 induced subgraphs on the same graph the
// rooted benchmarks use.
func BenchmarkMotifGlobalCensus(b *testing.B) {
	g, _ := ablationGraph(b)
	b.ResetTimer()
	var total int64
	for i := 0; i < b.N; i++ {
		c, err := motif.Enumerate(g, 3)
		if err != nil {
			b.Fatal(err)
		}
		total = c.Total
	}
	b.ReportMetric(float64(total), "subgraphs")
}

// BenchmarkDirectedFeatures measures the §5 extension experiment:
// directed (typed) versus undirected subgraph features for role
// prediction on the degree-matched citation network.
func BenchmarkDirectedFeatures(b *testing.B) {
	cfg := experiments.DefaultDirectedConfig()
	cfg.Citation.Papers = 400
	cfg.PerRole = 40
	cfg.Repeats = 5
	b.ResetTimer()
	var res *experiments.DirectedResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.RunDirected(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.DirectedF1, "f1-directed")
	b.ReportMetric(res.UndirectedF1, "f1-undirected")
}

// BenchmarkCensusEmax3/4/5 sweep the subgraph budget, the paper's main
// cost knob (§3.1: cost grows roughly exponentially with emax).
func BenchmarkCensusEmax3(b *testing.B) { benchCensus(b, core.Options{MaxEdges: 3}) }
func BenchmarkCensusEmax4(b *testing.B) { benchCensus(b, core.Options{MaxEdges: 4}) }
func BenchmarkCensusEmax5(b *testing.B) { benchCensus(b, core.Options{MaxEdges: 5}) }

// BenchmarkCensusParallel measures by-node parallel scaling of the
// census (the paper's "trivially parallelizable" claim, §3.2).
func BenchmarkCensusParallel(b *testing.B) {
	g, roots := ablationGraph(b)
	ex, err := core.NewExtractor(g, core.Options{MaxEdges: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex.CensusAll(roots, 0)
	}
}

// BenchmarkTypedDirectedCensus measures the §5 extension: the typed
// census on a directed, edge-labelled version of the ablation graph.
func BenchmarkTypedDirectedCensus(b *testing.B) {
	rng := rand.New(rand.NewSource(321))
	tb := typed.NewBuilder(true)
	tb.DeclareNodeLabels("a", "b", "c")
	tb.DeclareEdgeLabels("x", "y")
	n := 300
	for i := 0; i < n; i++ {
		tb.AddNode([]string{"a", "b", "c"}[rng.Intn(3)])
	}
	for u := 0; u < n; u++ {
		for k := 0; k < 6; k++ {
			v := rng.Intn(n)
			if v != u {
				tb.AddEdge(graph.NodeID(u), graph.NodeID(v), []string{"x", "y"}[rng.Intn(2)])
			}
		}
	}
	g, err := tb.Build()
	if err != nil {
		b.Fatal(err)
	}
	ex, err := typed.NewExtractor(g, typed.Options{MaxEdges: 4})
	if err != nil {
		b.Fatal(err)
	}
	roots := make([]graph.NodeID, 40)
	for i := range roots {
		roots[i] = graph.NodeID(i)
	}
	b.ResetTimer()
	var total int64
	for i := 0; i < b.N; i++ {
		total = 0
		for _, c := range ex.CensusAll(roots, 1) {
			total += c.Subgraphs
		}
	}
	b.ReportMetric(float64(total)/float64(len(roots)), "subgraphs/node")
}

// BenchmarkTypedUndirectedOverhead measures the typed engine on the same
// undirected single-edge-label workload as the core ablation graph, to
// quantify the generalisation overhead against BenchmarkAblationRollingHash.
func BenchmarkTypedUndirectedOverhead(b *testing.B) {
	g, roots := ablationGraph(b)
	tg, err := typed.FromUndirected(g, "e")
	if err != nil {
		b.Fatal(err)
	}
	ex, err := typed.NewExtractor(tg, typed.Options{MaxEdges: 4})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var total int64
	for i := 0; i < b.N; i++ {
		total = 0
		for _, c := range ex.CensusAll(roots, 1) {
			total += c.Subgraphs
		}
	}
	b.ReportMetric(float64(total)/float64(len(roots)), "subgraphs/node")
}

// BenchmarkExtractFeaturesFacade exercises the public one-call API.
func BenchmarkExtractFeaturesFacade(b *testing.B) {
	g, roots := ablationGraph(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, _, err := hsgf.ExtractFeatures(g, roots, hsgf.Options{MaxEdges: 3}, 0); err != nil {
			b.Fatal(err)
		}
	}
}
