// Label prediction: the paper's second task (§4.3) at example scale.
// Generate a LOAD-style entity co-occurrence network, mask the node
// labels of an evaluation sample, and predict each node's type from its
// heterogeneous subgraph features versus a DeepWalk embedding baseline —
// demonstrating the paper's headline result that typed subgraph counts
// beat structure-only embeddings by a wide margin.
package main

import (
	"context"
	"fmt"
	"math/rand"

	"hsgf"
	"hsgf/internal/core"
	"hsgf/internal/datagen"
	"hsgf/internal/embed"
	"hsgf/internal/ml"
)

func main() {
	cfg := datagen.DefaultCooccurrenceConfig()
	cfg.Locations, cfg.Organizations, cfg.Actors, cfg.Dates = 150, 120, 250, 90
	cfg.Documents = 1500
	co, err := datagen.GenerateCooccurrence(cfg)
	if err != nil {
		panic(err)
	}
	g := co.Graph
	fmt.Println("co-occurrence network:", g)

	// Sample up to 60 nodes per label.
	rng := rand.New(rand.NewSource(4))
	var nodes []hsgf.NodeID
	var y []int
	for l := 0; l < g.NumLabels(); l++ {
		members := g.NodesWithLabel(hsgf.Label(l))
		rng.Shuffle(len(members), func(a, b int) { members[a], members[b] = members[b], members[a] })
		if len(members) > 60 {
			members = members[:60]
		}
		for _, v := range members {
			nodes = append(nodes, v)
			y = append(y, l)
		}
	}

	// Subgraph features: emax=4, hub cutoff at the 90th degree
	// percentile, root label masked so the feature cannot leak the
	// answer (paper §4.3.2).
	opts := hsgf.Options{
		MaxEdges:      4,
		MaxDegree:     hsgf.DegreePercentile(g, 0.90),
		MaskRootLabel: true,
	}
	ex, err := hsgf.NewExtractor(g, opts)
	if err != nil {
		panic(err)
	}
	censuses := ex.CensusAll(nodes, 0)

	// DeepWalk baseline on the same graph.
	vecs, err := embed.DeepWalk(context.Background(), g,
		embed.WalkConfig{WalksPerNode: 5, WalkLength: 20},
		embed.SGNSConfig{Dim: 32, Window: 5, Negatives: 5, Epochs: 2},
		rand.New(rand.NewSource(5)))
	if err != nil {
		panic(err)
	}
	embRows := make([][]float64, len(nodes))
	for i, v := range nodes {
		embRows[i] = vecs[v]
	}

	// 70/30 stratified split, shared by both families.
	trainIdx, testIdx, err := ml.StratifiedSplit(y, 0.7, rng)
	if err != nil {
		panic(err)
	}

	subF1 := evaluate(subgraphMatrix(censuses, trainIdx), y, trainIdx, testIdx, true)
	embF1 := evaluate(embRows, y, trainIdx, testIdx, false)

	fmt.Printf("\nMacro F1 (subgraph features): %.3f\n", subF1)
	fmt.Printf("Macro F1 (DeepWalk):          %.3f\n", embF1)
	fmt.Println("\nsubgraph features encode which node types surround a node;")
	fmt.Println("the label-blind random-walk embedding cannot see types at all.")
}

func subgraphMatrix(censuses []*core.Census, trainIdx []int) [][]float64 {
	vocab := hsgf.NewVocabulary()
	for _, r := range trainIdx {
		vocab.AddCensus(censuses[r])
	}
	return hsgf.Matrix(censuses, vocab)
}

func evaluate(x [][]float64, y []int, trainIdx, testIdx []int, logCounts bool) float64 {
	xtr, xte := ml.Rows(x, trainIdx), ml.Rows(x, testIdx)
	if logCounts {
		xtr, xte = ml.Log1p(xtr), ml.Log1p(xte)
	}
	var sc ml.StandardScaler
	xtrS, err := sc.FitTransform(xtr)
	if err != nil {
		panic(err)
	}
	clf := ml.OneVsRest{C: 1, MaxIter: 100}
	if err := clf.Fit(xtrS, ml.Ints(y, trainIdx)); err != nil {
		panic(err)
	}
	return ml.MacroF1(ml.Ints(y, testIdx), clf.Predict(sc.Transform(xte)))
}
