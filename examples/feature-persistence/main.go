// Feature persistence: extract heterogeneous subgraph features once,
// serialise them as a JSON FeatureSet (with decoded, human-readable
// encodings), and consume them later without re-running the census —
// the workflow for sharing features with downstream tooling.
package main

import (
	"bytes"
	"fmt"
	"math/rand"

	"hsgf"
	"hsgf/internal/datagen"
)

func main() {
	// A small movie network stands in for "your" heterogeneous data.
	cfg := datagen.DefaultMovieConfig()
	cfg.Movies = 150
	mv, err := datagen.GenerateMovie(cfg)
	if err != nil {
		panic(err)
	}
	g := mv.Graph
	fmt.Println("network:", g)

	// Extract features for a 20-per-label sample, skipping the
	// top-degree 5% of roots (the paper's outlier policy).
	roots := hsgf.SampleRoots(g, 20, rand.New(rand.NewSource(2)))
	roots = hsgf.FilterRootsByDegree(g, roots, 0.95)

	ex, err := hsgf.NewExtractor(g, hsgf.Options{
		MaxEdges:      3,
		MaskRootLabel: true,
	})
	if err != nil {
		panic(err)
	}
	censuses := ex.CensusAll(roots, 0)
	vocab := hsgf.VocabularyOf(censuses)

	fs, err := hsgf.NewFeatureSet(ex, censuses, vocab)
	if err != nil {
		panic(err)
	}

	// Serialise — in a real pipeline this would be a file.
	var buf bytes.Buffer
	if err := fs.Write(&buf); err != nil {
		panic(err)
	}
	fmt.Printf("serialised %d roots x %d features: %d bytes of JSON\n",
		len(fs.Roots), len(fs.Features), buf.Len())

	// ... later, in another process, without the graph or extractor:
	loaded, err := hsgf.ReadFeatureSet(&buf)
	if err != nil {
		panic(err)
	}
	x := loaded.Dense()
	fmt.Printf("reloaded matrix: %d x %d\n", len(x), len(x[0]))

	// The vocabulary stays interpretable on its own.
	fmt.Println("\nfirst features in the reloaded vocabulary:")
	for i, f := range loaded.Features {
		if i == 5 {
			break
		}
		fmt.Printf("  %s\n", f.Encoding)
	}
	fmt.Println("\nslot names:", loaded.SlotNames, "(\"*\" is the masked root)")
}
