// Hub heuristics on a dense network: demonstrates the paper's
// topological optimization heuristic (§3.2). On a dense co-occurrence
// network, a census without a degree cutoff explodes through hub nodes;
// the dmax heuristic keeps hubs as labelled endpoints but never explores
// beyond them, trading a bounded amount of signal for orders of magnitude
// less work (Table 2 / §4.3.4).
package main

import (
	"fmt"
	"math/rand"
	"time"

	"hsgf"
	"hsgf/internal/datagen"
)

func main() {
	cfg := datagen.DefaultCooccurrenceConfig()
	cfg.Locations, cfg.Organizations, cfg.Actors, cfg.Dates = 120, 100, 200, 80
	cfg.Documents = 1200
	co, err := datagen.GenerateCooccurrence(cfg)
	if err != nil {
		panic(err)
	}
	g := co.Graph
	fmt.Println("network:", g)
	fmt.Println("max degree:", g.MaxDegree())

	// A fixed sample of moderate-degree roots.
	rng := rand.New(rand.NewSource(9))
	var roots []hsgf.NodeID
	for len(roots) < 25 {
		v := hsgf.NodeID(rng.Intn(g.NumNodes()))
		if d := g.Degree(v); d > 0 && d <= hsgf.DegreePercentile(g, 0.75) {
			roots = append(roots, v)
		}
	}

	fmt.Printf("\n%-8s %-12s %-14s %-12s\n", "dmax", "cutoff", "subgraphs", "time")
	for _, level := range []float64{0.80, 0.90, 0.95, 0.99} {
		cutoff := hsgf.DegreePercentile(g, level)
		ex, err := hsgf.NewExtractor(g, hsgf.Options{
			MaxEdges:      4,
			MaxDegree:     cutoff,
			MaskRootLabel: true,
		})
		if err != nil {
			panic(err)
		}
		start := time.Now()
		censuses := ex.CensusAll(roots, 0)
		elapsed := time.Since(start)
		var total int64
		for _, c := range censuses {
			total += c.Subgraphs
		}
		fmt.Printf("p%-7.0f %-12d %-14d %-12v\n", level*100, cutoff, total, elapsed.Round(time.Millisecond))
	}
	fmt.Println("\nhigher percentile levels explore through ever larger hubs:")
	fmt.Println("the subgraph count (and the census cost) grows sharply, which")
	fmt.Println("is why the paper could not even finish dmax = 100% on its two")
	fmt.Println("large networks (Table 2).")
}
