// Directed citations: the paper's §5 future work made concrete. Build a
// small directed, edge-heterogeneous citation network and show that typed
// subgraph features separate structurally identical but directionally
// different roles — a survey paper (cited by many) versus a new paper
// (citing many) — which the undirected encoding cannot tell apart.
package main

import (
	"fmt"
	"sort"

	"hsgf"
)

func main() {
	b := hsgf.NewTypedBuilder(true) // directed
	if err := b.DeclareEdgeLabels("cites", "extends"); err != nil {
		panic(err)
	}
	mustNode := func(label string) hsgf.NodeID {
		v, err := b.AddNode(label)
		if err != nil {
			panic(err)
		}
		return v
	}
	mustArc := func(u, v hsgf.NodeID, label string) {
		if err := b.AddEdge(u, v, label); err != nil {
			panic(err)
		}
	}

	// A survey cited by four papers; a fresh paper citing four others.
	// Both have degree 4 over identical node labels — an undirected
	// census sees the same star.
	survey := mustNode("p")
	fresh := mustNode("p")
	for i := 0; i < 4; i++ {
		citer := mustNode("p")
		mustArc(citer, survey, "cites")
		cited := mustNode("p")
		mustArc(fresh, cited, "cites")
	}
	// One "extends" relationship to exercise the multiplex dimension.
	followup := mustNode("p")
	mustArc(followup, survey, "extends")

	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	fmt.Printf("directed citation network: %d papers, %d arcs, %d edge labels\n",
		g.NumNodes(), g.NumEdges(), g.NumEdgeLabels())

	ex, err := hsgf.NewTypedExtractor(g, hsgf.TypedOptions{MaxEdges: 2})
	if err != nil {
		panic(err)
	}
	for _, node := range []struct {
		name string
		id   hsgf.NodeID
	}{{"survey", survey}, {"fresh paper", fresh}} {
		c := ex.Census(node.id)
		fmt.Printf("\n%s — %d subgraphs, %d distinct types:\n", node.name, c.Subgraphs, len(c.Counts))
		var lines []string
		for key, count := range c.Counts {
			lines = append(lines, fmt.Sprintf("  %-42s x%d", ex.EncodingString(key), count))
		}
		sort.Strings(lines)
		for _, l := range lines {
			fmt.Println(l)
		}
	}
	fmt.Println("\nevery incidence is typed: 'cites>' = outgoing citation,")
	fmt.Println("'cites<' = incoming. The survey's features are dominated by")
	fmt.Println("incoming citations, the fresh paper's by outgoing ones — the")
	fmt.Println("two roles are inseparable without edge directions.")
}
