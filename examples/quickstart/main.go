// Quickstart: build a small heterogeneous publication network by hand,
// extract heterogeneous subgraph features for its two institutions, and
// inspect the interpretable feature encodings — the minimal end-to-end
// walk through the public API.
package main

import (
	"fmt"
	"sort"

	"hsgf"
)

func main() {
	// The network of the paper's Figure 1A: institutions (I), authors
	// (A) and papers (P). Single-character label names render features
	// in the paper's compact notation.
	b := hsgf.NewBuilder()
	mustNode := func(label string) hsgf.NodeID {
		v, err := b.AddNode(label)
		if err != nil {
			panic(err)
		}
		return v
	}
	heidelberg := mustNode("I")
	stanford := mustNode("I")
	ada := mustNode("A")
	bob := mustNode("A")
	eve := mustNode("A")
	paper1 := mustNode("P")
	paper2 := mustNode("P")
	paper3 := mustNode("P")
	edges := [][2]hsgf.NodeID{
		{heidelberg, ada}, {heidelberg, bob}, {stanford, eve},
		{ada, paper1}, {bob, paper1}, // collaboration inside Heidelberg
		{eve, paper2}, {bob, paper2}, // collaboration across institutions
		{eve, paper3},
		{paper2, paper1}, {paper3, paper1}, // citations
	}
	for _, e := range edges {
		if err := b.AddEdge(e[0], e[1]); err != nil {
			panic(err)
		}
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	fmt.Println("network:", g)

	lc := hsgf.LabelConnectivityOf(g)
	fmt.Println("label connectivity has self loops (citations):", lc.HasSelfLoop())

	// Extract features: every connected subgraph with at most 3 edges
	// around each institution, counted by encoding.
	x, vocab, ex, err := hsgf.ExtractFeatures(
		g, []hsgf.NodeID{heidelberg, stanford}, hsgf.Options{MaxEdges: 3}, 0)
	if err != nil {
		panic(err)
	}

	names := []string{"Heidelberg", "Stanford"}
	for i := range x {
		fmt.Printf("\n%s — %d distinct subgraph types:\n", names[i], nonzero(x[i]))
		type feat struct {
			enc   string
			count float64
		}
		var feats []feat
		for c := 0; c < vocab.Len(); c++ {
			if x[i][c] > 0 {
				feats = append(feats, feat{ex.EncodingString(vocab.Key(c)), x[i][c]})
			}
		}
		sort.Slice(feats, func(a, b int) bool {
			if feats[a].count != feats[b].count {
				return feats[a].count > feats[b].count
			}
			return feats[a].enc < feats[b].enc
		})
		for _, f := range feats {
			fmt.Printf("  %-24s x%.0f\n", f.enc, f.count)
		}
	}
	fmt.Println("\nEach encoding is a labelled degree sequence: for example,")
	fmt.Println("A100I010 is an institution-author edge (the author has one")
	fmt.Println("institution neighbour; the institution has one author neighbour).")
}

func nonzero(row []float64) int {
	n := 0
	for _, v := range row {
		if v > 0 {
			n++
		}
	}
	return n
}
