// Publication ranking: the paper's motivating scenario (§4.2) at example
// scale. Generate a synthetic scientific publication network with
// KDD-Cup-style institution relevance ground truth, extract heterogeneous
// subgraph features for each institution from the conference-year
// subnetwork, train a random forest on past years, and rank institutions
// for the final year — then decode which subgraph structures the model
// found most predictive.
package main

import (
	"fmt"
	"sort"

	"hsgf"
	"hsgf/internal/core"
	"hsgf/internal/datagen"
	"hsgf/internal/ml"
)

func main() {
	cfg := datagen.DefaultPublicationConfig()
	cfg.Institutions = 60
	cfg.Conferences = []string{"KDD"}
	cfg.Years = []int{2010, 2011, 2012, 2013, 2014, 2015}
	cfg.PapersPerConfYear = 30
	cfg.ExternalPapers = 300
	pub, err := datagen.GeneratePublication(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Println("publication network:", pub.Graph)

	// One row per (institution, target year): subgraph features from the
	// preceding year's conference subnetwork, label = relevance.
	var censuses []*core.Census
	var labels []float64
	var rowYear []int
	var extractors []*core.Extractor
	for _, target := range cfg.Years[1:] {
		sub, instMap := pub.Subnetwork("KDD", []int{target - 1})
		ex, err := hsgf.NewExtractor(sub, hsgf.Options{MaxEdges: 4})
		if err != nil {
			panic(err)
		}
		extractors = append(extractors, ex)
		rel := pub.Relevance("KDD", target)
		for _, inst := range pub.Institutions {
			var census *core.Census
			if v, ok := instMap[inst]; ok {
				census = ex.Census(v)
			}
			censuses = append(censuses, census)
			labels = append(labels, rel[inst])
			rowYear = append(rowYear, target)
		}
	}

	testYear := cfg.Years[len(cfg.Years)-1]
	var trainIdx, testIdx []int
	for i, y := range rowYear {
		if y == testYear {
			testIdx = append(testIdx, i)
		} else {
			trainIdx = append(trainIdx, i)
		}
	}

	// Vocabulary from training rows only; test rows project onto it.
	vocab := hsgf.NewVocabulary()
	for _, r := range trainIdx {
		if censuses[r] != nil {
			vocab.AddCensus(censuses[r])
		}
	}
	x := hsgf.Matrix(censuses, vocab)
	fmt.Printf("design matrix: %d rows x %d subgraph features\n", len(x), vocab.Len())

	forest := ml.RandomForestRegressor{NumTrees: 150, Seed: 1}
	if err := forest.Fit(ml.Rows(x, trainIdx), ml.Vals(labels, trainIdx)); err != nil {
		panic(err)
	}
	pred := forest.Predict(ml.Rows(x, testIdx))
	truth := ml.Vals(labels, testIdx)
	fmt.Printf("NDCG@20 for %d: %.3f\n", testYear, ml.NDCG(pred, truth, 20))

	// Figure-4-style interpretation: the most discriminative subgraphs.
	type col struct {
		idx int
		imp float64
	}
	cols := make([]col, len(forest.Importance))
	for i, v := range forest.Importance {
		cols[i] = col{i, v}
	}
	sort.Slice(cols, func(a, b int) bool { return cols[a].imp > cols[b].imp })
	fmt.Println("\nmost discriminative subgraph features:")
	for _, c := range cols[:min(5, len(cols))] {
		enc := decode(extractors, vocab.Key(c.idx))
		fmt.Printf("  importance %.4f  %s\n", c.imp, enc)
	}
	fmt.Println("\n(labels: institution | author | paper — structures with authors")
	fmt.Println("of multiple institutions collaborating on one paper are the")
	fmt.Println("hallmark the paper highlights in Figure 4)")
}

func decode(extractors []*core.Extractor, key uint64) string {
	for _, ex := range extractors {
		if _, ok := ex.Decode(key); ok {
			return ex.EncodingString(key)
		}
	}
	return fmt.Sprintf("?%x", key)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
