module hsgf

go 1.22
