// Package hsgf is the public API of the heterogeneous subgraph features
// library, a from-scratch Go reproduction of Spitz et al., "Heterogeneous
// Subgraph Features for Information Networks" (GRADES-NDA'18).
//
// The library extracts node features from heterogeneous (node-labelled)
// networks by enumerating every connected subgraph with at most emax
// edges around a node and counting subgraph types, identified by the
// characteristic-sequence encoding of §3 of the paper. The resulting
// count vectors are powerful, interpretable node representations for
// ranking and classification tasks.
//
// Quick start:
//
//	b := hsgf.NewBuilder()
//	alice, _ := b.AddNode("author")
//	paper, _ := b.AddNode("paper")
//	b.AddEdge(alice, paper)
//	g, _ := b.Build()
//
//	ex, _ := hsgf.NewExtractor(g, hsgf.Options{MaxEdges: 4})
//	census := ex.Census(alice)
//	for key, count := range census.Counts {
//	    fmt.Println(ex.EncodingString(key), count)
//	}
//
// Feature matrices over many nodes:
//
//	censuses := ex.CensusAll(nodes, 0)
//	vocab := hsgf.VocabularyOf(censuses)
//	X := hsgf.Matrix(censuses, vocab)
//
// The subpackages under internal/ additionally provide the evaluation
// substrate of the paper: the ML stack (internal/ml), the embedding
// baselines (internal/embed), the synthetic evaluation networks
// (internal/datagen), the exact-isomorphism audit (internal/iso) and the
// experiment pipelines (internal/experiments), all driven by the cmd/
// tools.
package hsgf

import (
	"io"
	"math/rand"

	"hsgf/internal/core"
	"hsgf/internal/graph"
	"hsgf/internal/store"
)

// Re-exported graph types. See package hsgf/internal/graph for details.
type (
	// Graph is an immutable heterogeneous network.
	Graph = graph.Graph
	// NodeID identifies a node within one Graph.
	NodeID = graph.NodeID
	// Label identifies a node type within one Graph's alphabet.
	Label = graph.Label
	// EdgeID identifies an undirected edge within one Graph.
	EdgeID = graph.EdgeID
	// Builder accumulates nodes and edges and freezes them into a Graph.
	Builder = graph.Builder
	// Alphabet maps between Label values and their names.
	Alphabet = graph.Alphabet
	// LabelConnectivity is the label connectivity graph of a network.
	LabelConnectivity = graph.LabelConnectivity
)

// Re-exported feature-extraction types. See hsgf/internal/core.
type (
	// Extractor computes heterogeneous subgraph features over one graph.
	Extractor = core.Extractor
	// Options configures subgraph feature extraction (emax, dmax,
	// root-label masking, key mode).
	Options = core.Options
	// Census is the per-root subgraph type count table.
	Census = core.Census
	// Sequence is the canonical characteristic sequence of a subgraph.
	Sequence = core.Sequence
	// Vocabulary assigns dense columns to encoding keys.
	Vocabulary = core.Vocabulary
	// KeyMode selects rolling-hash or canonical-string census keys.
	KeyMode = core.KeyMode
	// CensusFlag records why a census is incomplete (budget, deadline,
	// cancellation, worker panic).
	CensusFlag = core.CensusFlag
	// PanicRecord describes a panic recovered inside a census worker.
	PanicRecord = core.PanicRecord
	// CheckpointConfig configures checkpointed extraction
	// (Extractor.CensusAllCheckpoint).
	CheckpointConfig = core.CheckpointConfig
	// RootLimits is a per-call override of the per-root enumeration
	// bounds (Extractor.CensusAllWithLimits).
	RootLimits = core.RootLimits
)

// Census degradation flags (Census.Flags / FeatureSet.RowFlags).
const (
	// FlagBudgetExceeded marks a census truncated by MaxSubgraphsPerRoot.
	FlagBudgetExceeded = core.FlagBudgetExceeded
	// FlagDeadlineExceeded marks a census truncated by RootDeadline.
	FlagDeadlineExceeded = core.FlagDeadlineExceeded
	// FlagCancelled marks a census interrupted by context cancellation.
	FlagCancelled = core.FlagCancelled
	// FlagPanicked marks a census abandoned after a recovered worker panic.
	FlagPanicked = core.FlagPanicked
	// FlagShardUnavailable marks a row whose owning shard was unreachable
	// in the sharded serving tier (hsgf-router partial-result degradation).
	FlagShardUnavailable = core.FlagShardUnavailable
)

// Census key modes.
const (
	// RollingHash keys censuses by the incremental rolling hash
	// (default, fast).
	RollingHash = core.RollingHash
	// CanonicalString keys censuses by a digest of the materialised
	// canonical sequence (ablation comparator).
	CanonicalString = core.CanonicalString
)

// NewBuilder returns a graph builder that discovers its label alphabet
// from the label names passed to AddNode.
func NewBuilder() *Builder { return graph.NewBuilder() }

// NewBuilderWithAlphabet returns a graph builder over a fixed alphabet.
func NewBuilderWithAlphabet(a *Alphabet) *Builder { return graph.NewBuilderWithAlphabet(a) }

// NewAlphabet returns an alphabet over the given label names.
func NewAlphabet(names ...string) (*Alphabet, error) { return graph.NewAlphabet(names...) }

// ReadTSV parses a graph in the TSV exchange format (see WriteTSV).
func ReadTSV(r io.Reader) (*Graph, error) { return graph.ReadTSV(r) }

// WriteTSV serializes a graph in the line-oriented TSV exchange format:
// "n<TAB>label[<TAB>name]" node lines followed by "e<TAB>u<TAB>v" edge
// lines.
func WriteTSV(w io.Writer, g *Graph) error { return graph.WriteTSV(w, g) }

// LabelConnectivityOf computes the label connectivity graph of g.
func LabelConnectivityOf(g *Graph) *LabelConnectivity { return graph.LabelConnectivityOf(g) }

// DegreePercentile returns the degree at fraction p of g's degree
// distribution; use it to translate the paper's percentile dmax levels
// into Options.MaxDegree values.
func DegreePercentile(g *Graph, p float64) int { return graph.DegreePercentile(g, p) }

// NewExtractor validates opts and returns a feature extractor for g.
func NewExtractor(g *Graph, opts Options) (*Extractor, error) { return core.NewExtractor(g, opts) }

// DefaultOptions returns the paper's label-prediction configuration:
// emax = 5, no hub cutoff, root label masked.
func DefaultOptions() Options { return core.DefaultOptions() }

// NewVocabulary returns an empty feature vocabulary.
func NewVocabulary() *Vocabulary { return core.NewVocabulary() }

// VocabularyOf builds a vocabulary covering all keys in the censuses.
func VocabularyOf(censuses []*Census) *Vocabulary { return core.VocabularyOf(censuses) }

// Matrix assembles censuses into a dense feature matrix over vocab;
// unseen keys are dropped (projecting test features onto a train
// vocabulary).
func Matrix(censuses []*Census, vocab *Vocabulary) [][]float64 { return core.Matrix(censuses, vocab) }

// FeatureSet is the portable JSON form of extracted features: decoded
// vocabulary plus sparse per-root count rows.
type FeatureSet = core.FeatureSet

// NewFeatureSet packages censuses and a vocabulary for serialisation.
func NewFeatureSet(ex *Extractor, censuses []*Census, vocab *Vocabulary) (*FeatureSet, error) {
	return core.NewFeatureSet(ex, censuses, vocab)
}

// ReadFeatureSet parses a feature set written by FeatureSet.Write.
func ReadFeatureSet(r io.Reader) (*FeatureSet, error) { return core.ReadFeatureSet(r) }

// ReadCensusCheckpointInfo inspects a census checkpoint file and reports
// how many roots it covers (total), how many are complete (done) and how
// many completed in degraded form (truncated by budget or deadline).
func ReadCensusCheckpointInfo(path string) (total, done, degraded int, err error) {
	return core.ReadCensusCheckpointInfo(path)
}

// FilterRootsByDegree drops roots above a degree percentile — the
// paper's policy of skipping the top-degree 5% of starting nodes
// (§4.3.5) corresponds to percentile 0.95.
func FilterRootsByDegree(g *Graph, roots []NodeID, percentile float64) []NodeID {
	return core.FilterRootsByDegree(g, roots, percentile)
}

// SampleRoots draws up to perLabel roots of every label uniformly, the
// paper's evaluation sampling protocol (§4.3.2).
func SampleRoots(g *Graph, perLabel int, rng *rand.Rand) []NodeID {
	return core.SampleRoots(g, perLabel, rng)
}

// ExtractFeatures is the one-call convenience path: it extracts censuses
// for all roots in parallel, builds a vocabulary over them and returns
// the dense feature matrix, the vocabulary, and the extractor (whose
// EncodingString decodes vocabulary keys for interpretation).
func ExtractFeatures(g *Graph, roots []NodeID, opts Options, workers int) ([][]float64, *Vocabulary, *Extractor, error) {
	ex, err := core.NewExtractor(g, opts)
	if err != nil {
		return nil, nil, nil, err
	}
	censuses := ex.CensusAll(roots, workers)
	vocab := core.VocabularyOf(censuses)
	return core.Matrix(censuses, vocab), vocab, ex, nil
}

// Artifact store: crash-safe, checksummed, generation-numbered snapshots
// of graphs and feature sets. See hsgf/internal/store for the envelope
// format and durability contract.
type (
	// Store is a directory of generation-numbered snapshot artifacts
	// with atomic writes, verification on read, corruption quarantine
	// and bounded retention.
	Store = store.Store
	// StoreOptions tunes a Store (retention depth, logging).
	StoreOptions = store.Options
)

// Artifact-store error taxonomy, checked with errors.Is.
var (
	// ErrStoreCorrupt marks an artifact that failed checksum or framing
	// verification; the store quarantines it and falls back.
	ErrStoreCorrupt = store.ErrCorrupt
	// ErrStoreUnsupportedVersion marks an artifact written by a newer
	// format revision than this binary understands.
	ErrStoreUnsupportedVersion = store.ErrUnsupportedVersion
	// ErrStoreNotFound marks a store with no intact generation of the
	// requested artifact kind.
	ErrStoreNotFound = store.ErrNotFound
)

// OpenStore opens (creating if necessary) an artifact store rooted at
// dir.
func OpenStore(dir string, opts StoreOptions) (*Store, error) { return store.Open(dir, opts) }

// SaveGraphSnapshot writes g into st as the next graph generation.
func SaveGraphSnapshot(st *Store, g *Graph) (uint64, error) { return core.SaveGraphSnapshot(st, g) }

// LoadGraphSnapshot loads the newest graph generation that passes
// verification, quarantining corrupt generations along the way.
func LoadGraphSnapshot(st *Store) (*Graph, uint64, error) { return core.LoadGraphSnapshot(st) }

// SaveGraphSnapshots writes g as both a TSV and a binary graph
// generation, keeping the two kinds' rotation clocks in lockstep. The
// binary side is the boot-path format; the TSV side keeps older tools
// working against the same store.
func SaveGraphSnapshots(st *Store, g *Graph) (uint64, error) { return core.SaveGraphSnapshots(st, g) }

// LoadGraphSnapshotAuto serves the newest graph snapshot across both
// the binary and TSV kinds, preferring the memory-mapped zero-copy
// binary load whenever it is at least as new.
func LoadGraphSnapshotAuto(st *Store) (*Graph, uint64, error) { return core.LoadGraphSnapshotAuto(st) }

// ReadGraphFile reads a graph from a file in whichever format its bytes
// declare: a store envelope holding a binary or TSV graph artifact, or
// a bare TSV exchange file.
func ReadGraphFile(path string) (*Graph, error) { return core.ReadGraphFile(path) }

// SaveFeatureSetSnapshot writes fs into st as the next feature-set
// generation.
func SaveFeatureSetSnapshot(st *Store, fs *FeatureSet) (uint64, error) {
	return core.SaveFeatureSetSnapshot(st, fs)
}

// LoadFeatureSetSnapshot loads the newest feature-set generation that
// passes verification.
func LoadFeatureSetSnapshot(st *Store) (*FeatureSet, uint64, error) {
	return core.LoadFeatureSetSnapshot(st)
}
