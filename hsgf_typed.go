package hsgf

import "hsgf/internal/typed"

// The typed subpackage implements the paper's §5 future-work extensions:
// directed subgraph features and edge-heterogeneous (multiplex) subgraph
// features, unified as censuses over typed incidences. The facade
// re-exports its API under Typed-prefixed names.

type (
	// TypedGraph is a heterogeneous network with labelled nodes,
	// labelled edges and optionally directed edges.
	TypedGraph = typed.Graph
	// TypedBuilder accumulates a TypedGraph.
	TypedBuilder = typed.Builder
	// TypedExtractor computes direction- and edge-label-aware subgraph
	// features.
	TypedExtractor = typed.Extractor
	// TypedOptions configures typed extraction (mirrors Options).
	TypedOptions = typed.Options
	// TypedCensus is the typed per-root subgraph count table.
	TypedCensus = typed.Census
	// TypedSequence is the canonical typed characteristic sequence.
	TypedSequence = typed.Sequence
	// EdgeLabel identifies an edge type within a TypedGraph.
	EdgeLabel = typed.EdgeLabel
)

// NewTypedBuilder returns a builder for a typed graph; directed selects
// arc semantics for AddEdge.
func NewTypedBuilder(directed bool) *TypedBuilder { return typed.NewBuilder(directed) }

// NewTypedExtractor validates opts and returns a typed extractor for g.
func NewTypedExtractor(g *TypedGraph, opts TypedOptions) (*TypedExtractor, error) {
	return typed.NewExtractor(g, opts)
}

// FromUndirected lifts a plain node-labelled graph into a TypedGraph
// with a single undirected edge label; typed censuses over the result
// coincide with the plain censuses of Extractor.
func FromUndirected(g *Graph, edgeLabelName string) (*TypedGraph, error) {
	return typed.FromUndirected(g, edgeLabelName)
}
