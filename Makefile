GO ?= go
FUZZTIME ?= 5s

.PHONY: all check fmt-check vet build test race fuzz-smoke serve-smoke reload-smoke router-smoke ingest-smoke fleet-ingest-smoke embed-bench-smoke bench bench-all bench-smoke bench-scale bench-scale-smoke clean

all: check

# The full tier-1 gate: what CI runs.
check: fmt-check vet build test race fuzz-smoke serve-smoke reload-smoke router-smoke ingest-smoke fleet-ingest-smoke embed-bench-smoke

# gofmt gate: fails listing any file that is not gofmt-clean.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzzing pass over every fuzz target; catches parser regressions
# without the cost of a real fuzzing campaign.
fuzz-smoke:
	$(GO) test -run=Fuzz -fuzz=FuzzReadTSV -fuzztime=$(FUZZTIME) ./internal/graph
	$(GO) test -run=Fuzz -fuzz=FuzzReadFeatureSet -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run=Fuzz -fuzz=FuzzParseCompact -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run=Fuzz -fuzz=FuzzCounterTable -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run=Fuzz -fuzz=FuzzStoreEnvelope -fuzztime=$(FUZZTIME) ./internal/store
	$(GO) test -run=Fuzz -fuzz=FuzzWALRecord -fuzztime=$(FUZZTIME) ./internal/store
	$(GO) test -run=Fuzz -fuzz=FuzzDecodeMutations -fuzztime=$(FUZZTIME) ./internal/graph
	$(GO) test -run=Fuzz -fuzz=FuzzDecodeGraphBinary -fuzztime=$(FUZZTIME) ./internal/graph
	$(GO) test -run=Fuzz -fuzz=FuzzWalkShardDeterminism -fuzztime=$(FUZZTIME) ./internal/embed

# End-to-end daemon smoke: builds cmd/hsgfd under -race, boots it on a
# synthetic graph and exercises serve/degrade/shed/drain over real HTTP.
serve-smoke:
	$(GO) test -race -tags smoke -run TestServeSmoke -v ./cmd/hsgfd

# End-to-end hot-reload smoke: boots cmd/hsgfd on an artifact store and
# rotates generations (admin endpoint + SIGHUP) under live traffic,
# including a corrupted snapshot that must be quarantined with zero
# failed requests.
reload-smoke:
	$(GO) test -race -tags smoke -run TestReloadSmoke -v ./cmd/hsgfd

# Multi-process routing-tier smoke: partitions a graph into 4 shards,
# boots 8 hsgfd replicas + hsgf-router (all under -race) and exercises
# scatter/gather, a fleet-wide zero-downtime reload under load, replica
# SIGKILL failover, and whole-shard loss degrading to flagged rows.
router-smoke:
	$(GO) test -race -tags smoke -run TestRouterSmoke -v -timeout 10m ./cmd/hsgf-router

# Fault-injection ingest smoke: boots cmd/hsgfd in -ingest mode under
# -race and drives it through the WAL's crash windows — SIGKILL
# mid-batch, a torn WAL tail, a bit-flipped record, a duplicate-replay
# storm — asserting recovery serves censuses identical to an
# uninterrupted (and compacting) run of the same batches.
ingest-smoke:
	$(GO) test -race -tags smoke -run TestIngestSmoke -v -timeout 10m ./cmd/hsgfd

# Fleet-wide ordered ingest smoke: boots a 2x2 follower fleet plus the
# sequencing hsgf-router (all under -race) and drives the sequencer's
# crash windows — replica SIGKILL mid-stream with background catch-up,
# router SIGKILL between sequencing and fan-out, a duplicate-replay
# storm, a torn sequencer tail — then pins every root's census to a
# single uninterrupted ingest daemon fed the identical stream.
fleet-ingest-smoke:
	$(GO) test -race -tags smoke -run TestFleetIngestSmoke -v -timeout 10m ./cmd/hsgf-router

# Embedding-engine smoke: tiny-graph corpus parity across worker
# counts, finite Hogwild output at Workers=2, and the walk-arena
# allocation bound — the properties timing benchmarks cannot assert.
embed-bench-smoke:
	$(GO) test -tags smoke -run TestEmbedBenchSmoke -v ./cmd/embedbench

# Tracked benchmarks: writes BENCH_census.json (ns/root, allocs/root,
# subgraphs/sec for the census hot path), BENCH_embed.json (walks/sec,
# updates/sec, speedup vs Workers=1 for the embedding engine) and
# BENCH_ingest.json (durable mutations/sec, dirty-set sizes,
# ingest-to-serve p50/p99 for the streaming-ingest path). Diff these
# files across PRs to track the hot paths.
bench:
	$(GO) run ./cmd/censusbench -o BENCH_census.json
	$(GO) run ./cmd/embedbench -o BENCH_embed.json
	$(GO) run ./cmd/ingestbench -o BENCH_ingest.json

# Full benchmark sweep across every package.
bench-all:
	$(GO) test -bench=. -benchmem ./...

# CI smoke: compile and exercise every benchmark briefly so benchmark
# code cannot rot, without paying for stable timings. The embedding
# benchmarks train real models (seconds per op), so they run once.
# The warm-cache alloc-budget test rides along: a warm 8-root
# /v1/features request over 100 allocations fails the target (timings
# drift with load; allocation counts are deterministic, so this is the
# fast-path regression gate CI can enforce).
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=100x ./internal/core ./internal/serve
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./internal/embed
	$(GO) test -run TestWarmServeAllocBudget -count=1 -v ./internal/serve

# Tracked scale ladder: hierarchical graphs at 10^4/10^5/10^6 nodes,
# measuring build time, binary-vs-TSV snapshot encode/decode, bytes per
# edge, census throughput, serve p50/p99, and peak RSS per rung into
# BENCH_scale.json. Diff it across PRs to track how the system scales.
bench-scale:
	$(GO) run ./cmd/scalebench -o BENCH_scale.json

# CI rung: the 10^4 step only, written to a scratch path so the
# committed full ladder is never overwritten by a smoke run.
bench-scale-smoke:
	$(GO) run ./cmd/scalebench -rungs 10000 -census-roots 128 -serve-seconds 0.5 -o BENCH_scale.smoke.json

clean:
	$(GO) clean ./...
