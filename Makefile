GO ?= go
FUZZTIME ?= 5s

.PHONY: all check fmt-check vet build test race fuzz-smoke serve-smoke reload-smoke bench bench-all bench-smoke clean

all: check

# The full tier-1 gate: what CI runs.
check: fmt-check vet build test race fuzz-smoke serve-smoke reload-smoke

# gofmt gate: fails listing any file that is not gofmt-clean.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzzing pass over every fuzz target; catches parser regressions
# without the cost of a real fuzzing campaign.
fuzz-smoke:
	$(GO) test -run=Fuzz -fuzz=FuzzReadTSV -fuzztime=$(FUZZTIME) ./internal/graph
	$(GO) test -run=Fuzz -fuzz=FuzzReadFeatureSet -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run=Fuzz -fuzz=FuzzParseCompact -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run=Fuzz -fuzz=FuzzCounterTable -fuzztime=$(FUZZTIME) ./internal/core
	$(GO) test -run=Fuzz -fuzz=FuzzStoreEnvelope -fuzztime=$(FUZZTIME) ./internal/store

# End-to-end daemon smoke: builds cmd/hsgfd under -race, boots it on a
# synthetic graph and exercises serve/degrade/shed/drain over real HTTP.
serve-smoke:
	$(GO) test -race -tags smoke -run TestServeSmoke -v ./cmd/hsgfd

# End-to-end hot-reload smoke: boots cmd/hsgfd on an artifact store and
# rotates generations (admin endpoint + SIGHUP) under live traffic,
# including a corrupted snapshot that must be quarantined with zero
# failed requests.
reload-smoke:
	$(GO) test -race -tags smoke -run TestReloadSmoke -v ./cmd/hsgfd

# Tracked census benchmarks: writes BENCH_census.json (ns/root,
# allocs/root, subgraphs/sec for census_root / census_all /
# serve_request). Diff this file across PRs to track the hot path.
bench:
	$(GO) run ./cmd/censusbench -o BENCH_census.json

# Full benchmark sweep across every package.
bench-all:
	$(GO) test -bench=. -benchmem ./...

# CI smoke: compile and exercise every benchmark briefly so benchmark
# code cannot rot, without paying for stable timings.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=100x ./internal/core ./internal/serve

clean:
	$(GO) clean ./...
