// Command censusbench runs the tracked census micro-benchmarks —
// single-root census, parallel full-sample extraction, and the serving
// daemon's request path — over the synthetic publication network and
// writes the results as JSON (BENCH_census.json under `make bench`).
//
// The JSON schema is stable so successive PRs can diff the trajectory:
// each benchmark reports ns/op, allocs and bytes per op, plus the
// derived ns/root, allocs/root and subgraphs/sec the census work is
// tracked on. DESIGN.md §8 records the pre-optimisation baseline.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"hsgf/internal/core"
	"hsgf/internal/datagen"
	"hsgf/internal/graph"
	"hsgf/internal/serve"
	"hsgf/internal/sysres"
)

// result is one benchmark's row in the output file.
type result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	// P50NsPerOp / P99NsPerOp are per-iteration latency percentiles,
	// reported by the serve benchmarks where tail latency is the tracked
	// contract (the warm path targets p99 < 100µs, not just the mean).
	P50NsPerOp      float64 `json:"p50_ns_per_op,omitempty"`
	P99NsPerOp      float64 `json:"p99_ns_per_op,omitempty"`
	Roots           int     `json:"roots_per_op"`
	NsPerRoot       float64 `json:"ns_per_root"`
	AllocsPerRoot   float64 `json:"allocs_per_root"`
	SubgraphsPerSec float64 `json:"subgraphs_per_sec,omitempty"`
}

type report struct {
	Generated string `json:"generated"`
	GoVersion string `json:"go_version"`
	NumCPU    int    `json:"num_cpu"`
	// GoMaxProcs is what parallel speedups in this file were actually
	// allowed to use — num_cpu alone makes scaling rows unreadable when
	// the scheduler is capped below the hardware.
	GoMaxProcs int `json:"gomaxprocs"`
	Nodes      int `json:"graph_nodes"`
	Edges      int `json:"graph_edges"`
	// BytesPerEdge is the bench graph's binary snapshot payload size
	// divided by its edge count — the storage density the scale ladder
	// tracks, pinned here on the census workload too.
	BytesPerEdge float64 `json:"bytes_per_edge"`
	// MaxRSSBytes is the process's peak resident set at the end of the
	// run: what the whole benchmark actually cost in memory.
	MaxRSSBytes int64    `json:"max_rss_bytes"`
	Results     []result `json:"results"`
}

// benchGraph mirrors the reduced publication network used by the
// in-package benchmarks (internal/core/censusbench_test.go), so numbers
// from `go test -bench` and from this harness are comparable.
func benchGraph() (*graph.Graph, error) {
	cfg := datagen.DefaultPublicationConfig()
	cfg.Institutions = 40
	cfg.Conferences = datagen.DefaultConferences[:3]
	cfg.Years = []int{2010, 2011, 2012, 2013}
	cfg.PapersPerConfYear = 25
	cfg.ExternalPapers = 400
	pub, err := datagen.GeneratePublication(cfg)
	if err != nil {
		return nil, err
	}
	return pub.Graph, nil
}

func sampleRoots(g *graph.Graph, n int) []graph.NodeID {
	if n > g.NumNodes() {
		n = g.NumNodes()
	}
	roots := make([]graph.NodeID, n)
	stride := g.NumNodes() / n
	for i := range roots {
		roots[i] = graph.NodeID(i * stride)
	}
	return roots
}

func row(name string, roots int, r testing.BenchmarkResult, subgraphs int64) result {
	perOp := float64(r.NsPerOp())
	out := result{
		Name:          name,
		Iterations:    r.N,
		NsPerOp:       perOp,
		AllocsPerOp:   float64(r.AllocsPerOp()),
		BytesPerOp:    float64(r.AllocedBytesPerOp()),
		Roots:         roots,
		NsPerRoot:     perOp / float64(roots),
		AllocsPerRoot: float64(r.AllocsPerOp()) / float64(roots),
	}
	if subgraphs > 0 && r.T > 0 {
		out.SubgraphsPerSec = float64(subgraphs) / r.T.Seconds()
	}
	return out
}

// serveResult is a hand-rolled benchmark run: the aggregate shape
// testing.Benchmark produces plus per-iteration latency percentiles,
// which the stdlib harness does not surface.
type serveResult struct {
	testing.BenchmarkResult
	p50, p99 time.Duration
}

func (r result) withPercentiles(s serveResult) result {
	r.P50NsPerOp = float64(s.p50.Nanoseconds())
	r.P99NsPerOp = float64(s.p99.Nanoseconds())
	return r
}

// benchServe drives the handler with one request per iteration for
// ~seconds of wall clock, recording per-iteration latency (for p50/p99)
// and the process-wide allocation delta (for allocs/request). body
// produces the iteration's request body; warmup calls use negative
// indices so per-iteration cache keys never collide with the run.
func benchServe(handler http.Handler, seconds float64, body func(i int) []byte) serveResult {
	do := func(i int) time.Duration {
		req := httptest.NewRequest(http.MethodPost, "/v1/features", bytes.NewReader(body(i)))
		rec := httptest.NewRecorder()
		t0 := time.Now()
		handler.ServeHTTP(rec, req)
		d := time.Since(t0)
		if rec.Code != http.StatusOK {
			fmt.Fprintf(os.Stderr, "censusbench: serve request returned %d: %s\n", rec.Code, rec.Body)
			os.Exit(1)
		}
		return d
	}
	do(-1) // warm the extractor pool (and, when enabled, the row cache)

	const (
		minIters = 100
		maxIters = 1 << 20
	)
	budget := time.Duration(seconds * float64(time.Second))
	lats := make([]time.Duration, 0, 1<<16)
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	var total time.Duration
	for i := 0; (i < minIters || time.Since(start) < budget) && i < maxIters; i++ {
		d := do(i)
		lats = append(lats, d)
		total += d
	}
	runtime.ReadMemStats(&after)

	n := len(lats)
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(a, b int) bool { return sorted[a] < sorted[b] })
	pct := func(q float64) time.Duration {
		idx := int(q * float64(n-1))
		return sorted[idx]
	}
	return serveResult{
		BenchmarkResult: testing.BenchmarkResult{
			N:         n,
			T:         total,
			MemAllocs: after.Mallocs - before.Mallocs,
			MemBytes:  after.TotalAlloc - before.TotalAlloc,
		},
		p50: pct(0.50),
		p99: pct(0.99),
	}
}

func main() {
	// testing.Benchmark reads -test.benchtime from the global flag set;
	// Init registers it so the harness honours it outside `go test`.
	testing.Init()
	var (
		out      = flag.String("o", "BENCH_census.json", "output path ('-' for stdout)")
		benchSec = flag.Float64("benchtime", 1.0, "target seconds per benchmark")
	)
	flag.Parse()

	if err := flag.Lookup("test.benchtime").Value.Set(fmt.Sprintf("%gs", *benchSec)); err != nil {
		fmt.Fprintln(os.Stderr, "censusbench:", err)
		os.Exit(1)
	}

	g, err := benchGraph()
	if err != nil {
		fmt.Fprintln(os.Stderr, "censusbench:", err)
		os.Exit(1)
	}

	rep := report{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Nodes:      g.NumNodes(),
		Edges:      g.NumEdges(),
	}
	if payload, err := graph.EncodeBinary(g, 0); err == nil && g.NumEdges() > 0 {
		rep.BytesPerEdge = float64(len(payload)) / float64(g.NumEdges())
	}

	// --- census_root: steady-state single-root census (serving row cost).
	{
		ex, err := core.NewExtractor(g, core.Options{MaxEdges: 3, MaskRootLabel: true})
		if err != nil {
			fmt.Fprintln(os.Stderr, "censusbench:", err)
			os.Exit(1)
		}
		roots := sampleRoots(g, 64)
		for _, r := range roots {
			ex.Census(r)
		}
		var subgraphs int64
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			subgraphs = 0
			for i := 0; i < b.N; i++ {
				subgraphs += ex.Census(roots[i%len(roots)]).Subgraphs
			}
		})
		rep.Results = append(rep.Results, row("census_root", 1, r, subgraphs))
	}

	// --- census_all: parallel full-sample extraction (pipeline workload).
	{
		ex, err := core.NewExtractor(g, core.Options{MaxEdges: 3, MaskRootLabel: true})
		if err != nil {
			fmt.Fprintln(os.Stderr, "censusbench:", err)
			os.Exit(1)
		}
		roots := sampleRoots(g, 256)
		ex.CensusAll(roots[:8], 0)
		var subgraphs int64
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			subgraphs = 0
			for i := 0; i < b.N; i++ {
				for _, c := range ex.CensusAll(roots, 0) {
					subgraphs += c.Subgraphs
				}
			}
		})
		rep.Results = append(rep.Results, row("census_all", len(roots), r, subgraphs))
	}

	// --- serve benchmarks: the daemon's POST /v1/features path end to
	// end, in three cache regimes over the same 8-root batch:
	//   serve_request       row cache disabled — every request extracts
	//                       (the historical trajectory metric);
	//   serve_request_warm  cache enabled and pre-warmed — every row is a
	//                       preserialised fragment hit (the <100µs path);
	//   serve_request_cold  cache enabled, every request carries a fresh
	//                       root_budget so its limits fingerprint — and
	//                       with it the cache key — never repeats: the
	//                       miss path including cache bookkeeping.
	{
		ex, err := core.NewExtractor(g, core.Options{MaxEdges: 3, MaskRootLabel: true})
		if err != nil {
			fmt.Fprintln(os.Stderr, "censusbench:", err)
			os.Exit(1)
		}
		ids := sampleRoots(g, 8)
		roots := make([]int64, len(ids))
		for i, r := range ids {
			roots[i] = int64(r)
		}
		fixedBody, err := json.Marshal(serve.FeaturesRequest{Roots: roots})
		if err != nil {
			fmt.Fprintln(os.Stderr, "censusbench:", err)
			os.Exit(1)
		}
		fixed := func(int) []byte { return fixedBody }
		// A per-iteration budget far above the real census size keeps the
		// rows complete (never truncated) while making every cache key
		// unique, so each request is a full miss.
		unique := func(i int) []byte {
			b, err := json.Marshal(serve.FeaturesRequest{Roots: roots, RootBudget: int64(1)<<40 + int64(i)})
			if err != nil {
				fmt.Fprintln(os.Stderr, "censusbench:", err)
				os.Exit(1)
			}
			return b
		}

		for _, bench := range []struct {
			name  string
			cfg   serve.Config
			body  func(i int) []byte
			check func(*serve.Server) error
		}{
			{name: "serve_request", cfg: serve.Config{RowCache: -1}, body: fixed},
			{name: "serve_request_warm", cfg: serve.Config{}, body: fixed},
			{name: "serve_request_cold", cfg: serve.Config{}, body: unique},
		} {
			srv := serve.NewServer(ex, bench.cfg)
			handler := srv.Handler()
			r := benchServe(handler, *benchSec, bench.body)
			rep.Results = append(rep.Results, row(bench.name, len(roots), r.BenchmarkResult, 0).withPercentiles(r))
		}
	}

	rep.MaxRSSBytes = sysres.MaxRSSBytes()
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "censusbench:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "censusbench:", err)
		os.Exit(1)
	}
	for _, r := range rep.Results {
		fmt.Fprintf(os.Stderr, "censusbench: %-18s %12.0f ns/root %8.2f allocs/root", r.Name, r.NsPerRoot, r.AllocsPerRoot)
		if r.SubgraphsPerSec > 0 {
			fmt.Fprintf(os.Stderr, " %14.0f subgraphs/sec", r.SubgraphsPerSec)
		}
		if r.P99NsPerOp > 0 {
			fmt.Fprintf(os.Stderr, " p50 %.0fµs p99 %.0fµs", r.P50NsPerOp/1e3, r.P99NsPerOp/1e3)
		}
		fmt.Fprintln(os.Stderr)
	}
	fmt.Fprintf(os.Stderr, "censusbench: wrote %s\n", *out)
}
