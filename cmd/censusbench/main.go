// Command censusbench runs the tracked census micro-benchmarks —
// single-root census, parallel full-sample extraction, and the serving
// daemon's request path — over the synthetic publication network and
// writes the results as JSON (BENCH_census.json under `make bench`).
//
// The JSON schema is stable so successive PRs can diff the trajectory:
// each benchmark reports ns/op, allocs and bytes per op, plus the
// derived ns/root, allocs/root and subgraphs/sec the census work is
// tracked on. DESIGN.md §8 records the pre-optimisation baseline.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"testing"
	"time"

	"hsgf/internal/core"
	"hsgf/internal/datagen"
	"hsgf/internal/graph"
	"hsgf/internal/serve"
)

// result is one benchmark's row in the output file.
type result struct {
	Name            string  `json:"name"`
	Iterations      int     `json:"iterations"`
	NsPerOp         float64 `json:"ns_per_op"`
	AllocsPerOp     float64 `json:"allocs_per_op"`
	BytesPerOp      float64 `json:"bytes_per_op"`
	Roots           int     `json:"roots_per_op"`
	NsPerRoot       float64 `json:"ns_per_root"`
	AllocsPerRoot   float64 `json:"allocs_per_root"`
	SubgraphsPerSec float64 `json:"subgraphs_per_sec,omitempty"`
}

type report struct {
	Generated string `json:"generated"`
	GoVersion string `json:"go_version"`
	NumCPU    int    `json:"num_cpu"`
	// GoMaxProcs is what parallel speedups in this file were actually
	// allowed to use — num_cpu alone makes scaling rows unreadable when
	// the scheduler is capped below the hardware.
	GoMaxProcs int      `json:"gomaxprocs"`
	Nodes      int      `json:"graph_nodes"`
	Edges      int      `json:"graph_edges"`
	Results    []result `json:"results"`
}

// benchGraph mirrors the reduced publication network used by the
// in-package benchmarks (internal/core/censusbench_test.go), so numbers
// from `go test -bench` and from this harness are comparable.
func benchGraph() (*graph.Graph, error) {
	cfg := datagen.DefaultPublicationConfig()
	cfg.Institutions = 40
	cfg.Conferences = datagen.DefaultConferences[:3]
	cfg.Years = []int{2010, 2011, 2012, 2013}
	cfg.PapersPerConfYear = 25
	cfg.ExternalPapers = 400
	pub, err := datagen.GeneratePublication(cfg)
	if err != nil {
		return nil, err
	}
	return pub.Graph, nil
}

func sampleRoots(g *graph.Graph, n int) []graph.NodeID {
	if n > g.NumNodes() {
		n = g.NumNodes()
	}
	roots := make([]graph.NodeID, n)
	stride := g.NumNodes() / n
	for i := range roots {
		roots[i] = graph.NodeID(i * stride)
	}
	return roots
}

func row(name string, roots int, r testing.BenchmarkResult, subgraphs int64) result {
	perOp := float64(r.NsPerOp())
	out := result{
		Name:          name,
		Iterations:    r.N,
		NsPerOp:       perOp,
		AllocsPerOp:   float64(r.AllocsPerOp()),
		BytesPerOp:    float64(r.AllocedBytesPerOp()),
		Roots:         roots,
		NsPerRoot:     perOp / float64(roots),
		AllocsPerRoot: float64(r.AllocsPerOp()) / float64(roots),
	}
	if subgraphs > 0 && r.T > 0 {
		out.SubgraphsPerSec = float64(subgraphs) / r.T.Seconds()
	}
	return out
}

func main() {
	// testing.Benchmark reads -test.benchtime from the global flag set;
	// Init registers it so the harness honours it outside `go test`.
	testing.Init()
	var (
		out      = flag.String("o", "BENCH_census.json", "output path ('-' for stdout)")
		benchSec = flag.Float64("benchtime", 1.0, "target seconds per benchmark")
	)
	flag.Parse()

	if err := flag.Lookup("test.benchtime").Value.Set(fmt.Sprintf("%gs", *benchSec)); err != nil {
		fmt.Fprintln(os.Stderr, "censusbench:", err)
		os.Exit(1)
	}

	g, err := benchGraph()
	if err != nil {
		fmt.Fprintln(os.Stderr, "censusbench:", err)
		os.Exit(1)
	}

	rep := report{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Nodes:      g.NumNodes(),
		Edges:      g.NumEdges(),
	}

	// --- census_root: steady-state single-root census (serving row cost).
	{
		ex, err := core.NewExtractor(g, core.Options{MaxEdges: 3, MaskRootLabel: true})
		if err != nil {
			fmt.Fprintln(os.Stderr, "censusbench:", err)
			os.Exit(1)
		}
		roots := sampleRoots(g, 64)
		for _, r := range roots {
			ex.Census(r)
		}
		var subgraphs int64
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			subgraphs = 0
			for i := 0; i < b.N; i++ {
				subgraphs += ex.Census(roots[i%len(roots)]).Subgraphs
			}
		})
		rep.Results = append(rep.Results, row("census_root", 1, r, subgraphs))
	}

	// --- census_all: parallel full-sample extraction (pipeline workload).
	{
		ex, err := core.NewExtractor(g, core.Options{MaxEdges: 3, MaskRootLabel: true})
		if err != nil {
			fmt.Fprintln(os.Stderr, "censusbench:", err)
			os.Exit(1)
		}
		roots := sampleRoots(g, 256)
		ex.CensusAll(roots[:8], 0)
		var subgraphs int64
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			subgraphs = 0
			for i := 0; i < b.N; i++ {
				for _, c := range ex.CensusAll(roots, 0) {
					subgraphs += c.Subgraphs
				}
			}
		})
		rep.Results = append(rep.Results, row("census_all", len(roots), r, subgraphs))
	}

	// --- serve_request: the daemon's POST /v1/features path end to end.
	{
		ex, err := core.NewExtractor(g, core.Options{MaxEdges: 3, MaskRootLabel: true})
		if err != nil {
			fmt.Fprintln(os.Stderr, "censusbench:", err)
			os.Exit(1)
		}
		srv := serve.NewServer(ex, serve.Config{})
		handler := srv.Handler()
		ids := sampleRoots(g, 8)
		roots := make([]int64, len(ids))
		for i, r := range ids {
			roots[i] = int64(r)
		}
		body, err := json.Marshal(serve.FeaturesRequest{Roots: roots})
		if err != nil {
			fmt.Fprintln(os.Stderr, "censusbench:", err)
			os.Exit(1)
		}
		do := func() int {
			req := httptest.NewRequest(http.MethodPost, "/v1/features", bytes.NewReader(body))
			rec := httptest.NewRecorder()
			handler.ServeHTTP(rec, req)
			return rec.Code
		}
		if code := do(); code != http.StatusOK {
			fmt.Fprintf(os.Stderr, "censusbench: serve warmup returned %d\n", code)
			os.Exit(1)
		}
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if code := do(); code != http.StatusOK {
					b.Fatalf("request returned %d", code)
				}
			}
		})
		rep.Results = append(rep.Results, row("serve_request", len(roots), r, 0))
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "censusbench:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "censusbench:", err)
		os.Exit(1)
	}
	for _, r := range rep.Results {
		fmt.Fprintf(os.Stderr, "censusbench: %-14s %12.0f ns/root %8.2f allocs/root", r.Name, r.NsPerRoot, r.AllocsPerRoot)
		if r.SubgraphsPerSec > 0 {
			fmt.Fprintf(os.Stderr, " %14.0f subgraphs/sec", r.SubgraphsPerSec)
		}
		fmt.Fprintln(os.Stderr)
	}
	fmt.Fprintf(os.Stderr, "censusbench: wrote %s\n", *out)
}
