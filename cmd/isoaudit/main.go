// Command isoaudit re-derives the paper's encoding-uniqueness bounds
// (§3.1, Figure 1C) by exhaustive enumeration: for every edge budget it
// enumerates all non-isomorphic connected labelled graphs, groups them by
// characteristic-sequence encoding, and reports collisions. The paper's
// claims — unique through emax = 5 when the label connectivity graph is
// loop-free, and through emax = 4 otherwise — fall out as the last
// collision-free rows of the two tables.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"hsgf/internal/iso"
)

func main() {
	var (
		maxEdges = flag.Int("max-edges", 6, "largest edge budget to audit")
		labels   = flag.Int("labels", 2, "alphabet size for the loop-free audit")
	)
	flag.Parse()

	start := time.Now()
	fmt.Printf("Audit A — same-label edges allowed (label connectivity with loops), %d label(s)\n", 1)
	printAudit(1, *maxEdges, false)
	fmt.Printf("Audit B — loop-free label connectivity, %d labels\n", *labels)
	printAudit(*labels, *maxEdges, true)
	fmt.Fprintf(os.Stderr, "isoaudit: done in %v\n", time.Since(start).Round(time.Millisecond))
}

func printAudit(k, maxEdges int, loopFree bool) {
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "edges\tgraphs\tencodings\tcollisions\tunique")
	lastUnique := 0
	for e := 1; e <= maxEdges; e++ {
		r := iso.Audit(e, k, loopFree)
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%v\n", e, r.Graphs, r.Encodings, len(r.Collisions), r.Unique())
		if r.Unique() && lastUnique == e-1 {
			lastUnique = e
		}
		if !r.Unique() && len(r.Collisions) > 0 {
			c := r.Collisions[0]
			fmt.Fprintf(tw, "\t\t\t\twitness: %s\n", describe(c.A, c.B))
		}
	}
	if err := tw.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "isoaudit:", err)
		os.Exit(1)
	}
	fmt.Printf("=> encoding unique through emax = %d\n\n", lastUnique)
}

func describe(a, b iso.Small) string {
	return fmt.Sprintf("%s vs %s", render(a), render(b))
}

func render(g iso.Small) string {
	s := fmt.Sprintf("{n=%d;", g.N)
	for i := 0; i < g.N; i++ {
		for j := i + 1; j < g.N; j++ {
			if g.HasEdge(i, j) {
				s += fmt.Sprintf(" %d%c-%d%c", i, 'a'+rune(g.Labels[i]), j, 'a'+rune(g.Labels[j]))
			}
		}
	}
	return s + "}"
}
