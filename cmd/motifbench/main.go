// Command motifbench demonstrates the contrast the paper draws in §2
// between classical network-motif analysis and rooted subgraph features:
// a global census enumerates every size-k subgraph of the network
// (cost grows with the whole network and explodes in k), whereas the
// rooted census only explores around the nodes that need features. The
// tool runs both on the same synthetic co-occurrence network, reports
// the motif z-scores of the global analysis, and compares wall-clock
// costs.
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"text/tabwriter"
	"time"

	"hsgf/internal/core"
	"hsgf/internal/datagen"
	"hsgf/internal/graph"
	"hsgf/internal/motif"
)

func main() {
	var (
		k       = flag.Int("k", 3, "motif size (nodes) for the global census")
		samples = flag.Int("samples", 10, "random networks for the null model")
		rooted  = flag.Int("rooted", 100, "sample size for the rooted census comparison")
		emax    = flag.Int("emax", 4, "rooted census edge budget")
		seed    = flag.Int64("seed", 13, "seed")
	)
	flag.Parse()

	cfg := datagen.DefaultCooccurrenceConfig()
	cfg.Locations, cfg.Organizations, cfg.Actors, cfg.Dates = 150, 120, 250, 90
	cfg.Documents = 1500
	cfg.Seed = *seed
	co, err := datagen.GenerateCooccurrence(cfg)
	if err != nil {
		fail(err)
	}
	g := co.Graph
	fmt.Println("network:", g)

	// Global motif analysis.
	rng := rand.New(rand.NewSource(*seed))
	start := time.Now()
	sig, err := motif.Motifs(g, *k, *samples, rng)
	if err != nil {
		fail(err)
	}
	globalTime := time.Since(start)

	fmt.Printf("\nglobal size-%d motif analysis (%d null samples, %v):\n", *k, *samples, globalTime.Round(time.Millisecond))
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "z-score\treal\tnull mean\tclass")
	shown := 0
	for _, s := range sig {
		if shown >= 8 {
			break
		}
		z := fmt.Sprintf("%.1f", s.Z)
		if math.IsInf(s.Z, 0) {
			z = "inf"
		}
		fmt.Fprintf(tw, "%s\t%d\t%.1f\t%s\n", z, s.Real, s.RandMean, motif.Describe(s.Example, g.Alphabet()))
		shown++
	}
	if err := tw.Flush(); err != nil {
		fail(err)
	}

	// Rooted census over a bounded sample.
	roots := core.SampleRoots(g, *rooted/g.NumLabels()+1, rand.New(rand.NewSource(*seed+1)))
	roots = core.FilterRootsByDegree(g, roots, 0.95)
	ex, err := core.NewExtractor(g, core.Options{
		MaxEdges:      *emax,
		MaxDegree:     graph.DegreePercentile(g, 0.90),
		MaskRootLabel: true,
	})
	if err != nil {
		fail(err)
	}
	start = time.Now()
	censuses := ex.CensusAll(roots, 0)
	rootedTime := time.Since(start)
	var subgraphs int64
	distinct := map[uint64]bool{}
	for _, c := range censuses {
		subgraphs += c.Subgraphs
		for key := range c.Counts {
			distinct[key] = true
		}
	}
	fmt.Printf("\nrooted census (emax=%d, dmax=p90) over %d sampled roots: %v\n",
		*emax, len(roots), rootedTime.Round(time.Millisecond))
	fmt.Printf("  %d subgraph occurrences, %d distinct feature encodings\n", subgraphs, len(distinct))

	fmt.Printf("\nglobal/rooted wall-clock ratio: %.1fx\n", globalTime.Seconds()/rootedTime.Seconds())
	fmt.Println("\nthe global census must touch the entire network (and every null")
	fmt.Println("sample repeats that cost), while the rooted census scales with the")
	fmt.Println("feature sample — the reason the paper builds features from rooted")
	fmt.Println("censuses instead of motif machinery (§2).")
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "motifbench:", err)
	os.Exit(1)
}
