// Command rankbench regenerates the paper's rank-prediction evaluation:
// Figure 3 (NDCG@20 per conference, regressor and feature family),
// Table 1 (average NDCG) and Figure 4 (most discriminative subgraphs).
//
// The default configuration is laptop-scale; -full switches to the
// paper's settings (emax=6, d=128, r=10, l=80, 300 trees) at a much
// longer runtime.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"hsgf/internal/experiments"
)

func main() {
	var (
		full   = flag.Bool("full", false, "use the paper's full-scale settings")
		seed   = flag.Int64("seed", 7, "experiment seed")
		only   = flag.String("only", "", "render only one artifact: figure3 | table1 | figure4")
		embedW = flag.Int("embed-workers", runtime.GOMAXPROCS(0),
			"parallel workers for embedding training (1 = exact serial, bitwise-deterministic)")
	)
	flag.Parse()

	cfg := experiments.DefaultRankConfig()
	if *full {
		cfg = experiments.FullRankConfig()
	}
	cfg.Seed = *seed
	cfg.Publication.Seed = *seed
	cfg.EmbedWorkers = *embedW

	// Ctrl-C / SIGTERM cancels the embedding training loops cleanly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	res, err := experiments.RunRank(ctx, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rankbench:", err)
		os.Exit(1)
	}
	switch *only {
	case "figure3":
		experiments.WriteFigure3(os.Stdout, res)
	case "table1":
		experiments.WriteTable1(os.Stdout, res)
	case "figure4":
		experiments.WriteFigure4(os.Stdout, res)
	case "":
		experiments.WriteFigure3(os.Stdout, res)
		experiments.WriteTable1(os.Stdout, res)
		experiments.WriteFigure4(os.Stdout, res)
	default:
		fmt.Fprintf(os.Stderr, "rankbench: unknown artifact %q\n", *only)
		os.Exit(2)
	}
	fmt.Fprintf(os.Stderr, "rankbench: done in %v\n", time.Since(start).Round(time.Millisecond))
}
