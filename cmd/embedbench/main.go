// Command embedbench runs the tracked embedding micro-benchmarks —
// sharded walk generation (uniform and node2vec-biased) and Hogwild
// SGNS / LINE training — over the synthetic publication network and
// writes the results as JSON (BENCH_embed.json under `make bench`).
//
// Every workload is swept over a ladder of worker counts, so the file
// records parallel scaling rows (walks/sec, updates/sec, ns/update,
// allocs/op, speedup vs Workers=1) next to `gomaxprocs` and `num_cpu`
// — a speedup table is only readable alongside the core count that
// produced it. The JSON schema is stable so successive PRs can diff
// the trajectory, like BENCH_census.json for the census hot path.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"hsgf/internal/datagen"
	"hsgf/internal/embed"
	"hsgf/internal/graph"
)

// result is one (benchmark, worker count) row in the output file.
type result struct {
	Name          string  `json:"name"`
	Workers       int     `json:"workers"`
	Iterations    int     `json:"iterations"`
	NsPerOp       float64 `json:"ns_per_op"`
	AllocsPerOp   float64 `json:"allocs_per_op"`
	BytesPerOp    float64 `json:"bytes_per_op"`
	WalksPerSec   float64 `json:"walks_per_sec,omitempty"`
	UpdatesPerSec float64 `json:"updates_per_sec,omitempty"`
	NsPerUpdate   float64 `json:"ns_per_update,omitempty"`
	// SpeedupVsSerial is this row's throughput over the Workers=1 row
	// of the same benchmark (1.0 for the serial row itself).
	SpeedupVsSerial float64 `json:"speedup_vs_serial,omitempty"`
}

type report struct {
	Generated  string   `json:"generated"`
	GoVersion  string   `json:"go_version"`
	NumCPU     int      `json:"num_cpu"`
	GoMaxProcs int      `json:"gomaxprocs"`
	Nodes      int      `json:"graph_nodes"`
	Edges      int      `json:"graph_edges"`
	Results    []result `json:"results"`
}

// benchGraph mirrors the reduced publication network cmd/censusbench
// uses, so census and embedding numbers describe the same graph.
func benchGraph() (*graph.Graph, error) {
	cfg := datagen.DefaultPublicationConfig()
	cfg.Institutions = 40
	cfg.Conferences = datagen.DefaultConferences[:3]
	cfg.Years = []int{2010, 2011, 2012, 2013}
	cfg.PapersPerConfYear = 25
	cfg.ExternalPapers = 400
	pub, err := datagen.GeneratePublication(cfg)
	if err != nil {
		return nil, err
	}
	return pub.Graph, nil
}

// workerLadder is the scaling sweep: 1, 2, 4 always (so the tracked
// file carries comparable rows across machines), 8 where the hardware
// can actually run it.
func workerLadder() []int {
	ladder := []int{1, 2, 4}
	if runtime.NumCPU() >= 8 {
		ladder = append(ladder, 8)
	}
	return ladder
}

// sgnsUpdates counts the nominal pair updates (positive + negative
// samples per skip-gram pair) one corpus pass performs.
func sgnsUpdates(walks [][]graph.NodeID, window, negatives, epochs int) int64 {
	var pairs int64
	for _, w := range walks {
		for i := range w {
			lo := i - window
			if lo < 0 {
				lo = 0
			}
			hi := i + window
			if hi >= len(w) {
				hi = len(w) - 1
			}
			pairs += int64(hi - lo)
		}
	}
	return pairs * int64(1+negatives) * int64(epochs)
}

func row(name string, workers int, r testing.BenchmarkResult, work int64, unitWalks bool) result {
	out := result{
		Name:        name,
		Workers:     workers,
		Iterations:  r.N,
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: float64(r.AllocsPerOp()),
		BytesPerOp:  float64(r.AllocedBytesPerOp()),
	}
	if r.T > 0 && work > 0 {
		perSec := float64(work) * float64(r.N) / r.T.Seconds()
		if unitWalks {
			out.WalksPerSec = perSec
		} else {
			out.UpdatesPerSec = perSec
			out.NsPerUpdate = float64(r.NsPerOp()) / float64(work)
		}
	}
	return out
}

// fillSpeedups divides every row's throughput by its benchmark's
// Workers=1 row.
func fillSpeedups(rows []result) {
	serial := map[string]float64{}
	for _, r := range rows {
		if r.Workers == 1 {
			serial[r.Name] = r.WalksPerSec + r.UpdatesPerSec
		}
	}
	for i := range rows {
		if base := serial[rows[i].Name]; base > 0 {
			rows[i].SpeedupVsSerial = (rows[i].WalksPerSec + rows[i].UpdatesPerSec) / base
		}
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "embedbench:", err)
	os.Exit(1)
}

func main() {
	// testing.Benchmark reads -test.benchtime from the global flag set;
	// Init registers it so the harness honours it outside `go test`.
	testing.Init()
	var (
		out      = flag.String("o", "BENCH_embed.json", "output path ('-' for stdout)")
		benchSec = flag.Float64("benchtime", 1.0, "target seconds per benchmark")
	)
	flag.Parse()
	if err := flag.Lookup("test.benchtime").Value.Set(fmt.Sprintf("%gs", *benchSec)); err != nil {
		fail(err)
	}

	g, err := benchGraph()
	if err != nil {
		fail(err)
	}
	rep := report{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Nodes:      g.NumNodes(),
		Edges:      g.NumEdges(),
	}
	ctx := context.Background()

	wcfg := embed.WalkConfig{WalksPerNode: 10, WalkLength: 40, ReturnP: 1, InOutQ: 1}
	totalWalks := int64(g.NumNodes() * wcfg.WalksPerNode)

	// --- uniform_walks / biased_walks: sharded corpus generation.
	for _, workers := range workerLadder() {
		cfg := wcfg
		cfg.Workers = workers
		rng := rand.New(rand.NewSource(7))
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := embed.UniformWalks(ctx, g, cfg, rng); err != nil {
					b.Fatal(err)
				}
			}
		})
		rep.Results = append(rep.Results, row("uniform_walks", workers, r, totalWalks, true))
	}
	for _, workers := range workerLadder() {
		cfg := wcfg
		cfg.ReturnP, cfg.InOutQ = 0.5, 2
		cfg.Workers = workers
		rng := rand.New(rand.NewSource(7))
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := embed.BiasedWalks(ctx, g, cfg, rng); err != nil {
					b.Fatal(err)
				}
			}
		})
		rep.Results = append(rep.Results, row("biased_walks", workers, r, totalWalks, true))
	}

	// --- sgns: Hogwild skip-gram training over a fixed corpus.
	walks, err := embed.UniformWalks(ctx, g, wcfg, rand.New(rand.NewSource(7)))
	if err != nil {
		fail(err)
	}
	scfg := embed.SGNSConfig{Dim: 32, Window: 5, Negatives: 5, Epochs: 1}
	updates := sgnsUpdates(walks, scfg.Window, scfg.Negatives, scfg.Epochs)
	for _, workers := range workerLadder() {
		cfg := scfg
		cfg.Workers = workers
		rng := rand.New(rand.NewSource(8))
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := embed.TrainSGNS(ctx, g, walks, cfg, rng); err != nil {
					b.Fatal(err)
				}
			}
		})
		rep.Results = append(rep.Results, row("sgns", workers, r, updates, false))
	}

	// --- line: Hogwild edge-sampling training, both proximity orders.
	lcfg := embed.LINEConfig{Dim: 16, Negatives: 5, Samples: 20 * g.NumEdges()}
	lineUpdates := int64(lcfg.Samples) * int64(1+lcfg.Negatives) * 2
	for _, workers := range workerLadder() {
		cfg := lcfg
		cfg.Workers = workers
		rng := rand.New(rand.NewSource(9))
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := embed.LINE(ctx, g, cfg, rng); err != nil {
					b.Fatal(err)
				}
			}
		})
		rep.Results = append(rep.Results, row("line", workers, r, lineUpdates, false))
	}

	fillSpeedups(rep.Results)

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fail(err)
	}
	for _, r := range rep.Results {
		fmt.Fprintf(os.Stderr, "embedbench: %-14s w=%d %14.0f ns/op %8.2f allocs/op", r.Name, r.Workers, r.NsPerOp, r.AllocsPerOp)
		if r.WalksPerSec > 0 {
			fmt.Fprintf(os.Stderr, " %12.0f walks/sec", r.WalksPerSec)
		}
		if r.UpdatesPerSec > 0 {
			fmt.Fprintf(os.Stderr, " %12.0f updates/sec", r.UpdatesPerSec)
		}
		fmt.Fprintf(os.Stderr, " %5.2fx\n", r.SpeedupVsSerial)
	}
	fmt.Fprintf(os.Stderr, "embedbench: wrote %s (gomaxprocs=%d num_cpu=%d)\n", *out, rep.GoMaxProcs, rep.NumCPU)
}
