//go:build smoke

package main

// Embed bench smoke (`make embed-bench-smoke`): a tiny-graph pass over
// the parallel embedding engine that CI can afford on every push. It
// asserts the properties a timing benchmark cannot — finite output from
// Hogwild training at Workers=2, a corpus that matches the serial one
// byte for byte, and walk-generation allocations that stay amortised
// (the arena design's non-regression guard).

import (
	"context"
	"math/rand"
	"testing"

	"hsgf/internal/datagen"
	"hsgf/internal/embed"
	"hsgf/internal/graph"
)

func smokeGraph(t *testing.T) *graph.Graph {
	t.Helper()
	cfg := datagen.DefaultPublicationConfig()
	cfg.Institutions = 10
	cfg.Conferences = datagen.DefaultConferences[:2]
	cfg.Years = []int{2010, 2011}
	cfg.PapersPerConfYear = 8
	cfg.ExternalPapers = 60
	pub, err := datagen.GeneratePublication(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return pub.Graph
}

func allFinite(t *testing.T, name string, vecs [][]float64) {
	t.Helper()
	for i, v := range vecs {
		for d, x := range v {
			if x-x != 0 {
				t.Fatalf("%s: non-finite value %v at row %d dim %d", name, x, i, d)
			}
		}
	}
}

func TestEmbedBenchSmoke(t *testing.T) {
	g := smokeGraph(t)
	ctx := context.Background()
	wcfg := embed.WalkConfig{WalksPerNode: 4, WalkLength: 16, ReturnP: 1, InOutQ: 1, Workers: 2}

	// Sharded corpus matches the serial one.
	parallel, err := embed.UniformWalks(ctx, g, wcfg, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	serialCfg := wcfg
	serialCfg.Workers = 1
	serial, err := embed.UniformWalks(ctx, g, serialCfg, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if len(parallel) != len(serial) || len(parallel) != g.NumNodes()*wcfg.WalksPerNode {
		t.Fatalf("corpus sizes differ: %d vs %d", len(parallel), len(serial))
	}
	for i := range serial {
		if len(parallel[i]) != len(serial[i]) {
			t.Fatalf("walk %d differs across worker counts", i)
		}
		for j := range serial[i] {
			if parallel[i][j] != serial[i][j] {
				t.Fatalf("walk %d differs across worker counts", i)
			}
		}
	}

	// Hogwild training at Workers=2 produces finite embeddings.
	sgns, err := embed.TrainSGNS(ctx, g, parallel,
		embed.SGNSConfig{Dim: 16, Window: 4, Negatives: 3, Epochs: 1, Workers: 2}, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	allFinite(t, "sgns", sgns)
	line, err := embed.LINE(ctx, g,
		embed.LINEConfig{Dim: 8, Negatives: 3, Samples: 4 * g.NumEdges(), Workers: 2}, rand.New(rand.NewSource(5)))
	if err != nil {
		t.Fatal(err)
	}
	allFinite(t, "line", line)

	// Walk-generation allocations stay amortised: the arena design
	// pays per chunk (256 walks), never per walk.
	total := g.NumNodes() * wcfg.WalksPerNode
	allocs := testing.AllocsPerRun(5, func() {
		if _, err := embed.UniformWalks(ctx, g, serialCfg, rand.New(rand.NewSource(6))); err != nil {
			t.Fatal(err)
		}
	})
	chunks := (total + 255) / 256
	if limit := float64(2*chunks + 12); allocs > limit {
		t.Fatalf("UniformWalks did %.0f allocs for %d walks, want <= %.0f (arena regression)", allocs, total, limit)
	}
}
