// Command runtimebench regenerates Table 3: the per-node feature
// extraction time of the subgraph census (mean and tail percentiles)
// against the amortised per-node cost of the three embedding baselines,
// on each of the three evaluation networks.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"hsgf/internal/experiments"
)

func main() {
	var (
		scale  = flag.Float64("scale", 0.25, "network scale factor in (0,1]")
		full   = flag.Bool("full", false, "use the paper's protocol parameters")
		seed   = flag.Int64("seed", 11, "experiment seed")
		embedW = flag.Int("embed-workers", runtime.GOMAXPROCS(0),
			"parallel workers for the embedding timings (1 = serial, as the paper measures)")
	)
	flag.Parse()

	cfg := experiments.DefaultLabelConfig()
	if *full {
		cfg = experiments.FullLabelConfig()
	}
	cfg.Seed = *seed
	cfg.EmbedWorkers = *embedW

	datasets, err := experiments.LoadLabelDatasets(*scale, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "runtimebench:", err)
		os.Exit(1)
	}
	// Ctrl-C / SIGTERM cancels the embedding timing runs cleanly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	var rows []*experiments.RuntimeRow
	for _, ds := range datasets {
		row, err := experiments.MeasureRuntime(ctx, ds.Name, ds.Graph, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, "runtimebench:", err)
			os.Exit(1)
		}
		rows = append(rows, row)
	}
	experiments.WriteTable3(os.Stdout, rows)
	fmt.Fprintf(os.Stderr, "runtimebench: done in %v\n", time.Since(start).Round(time.Millisecond))
}
