// Command labelbench regenerates the paper's label-prediction
// evaluation on the three synthetic networks (LOAD, IMDB, MAG):
//
//	-mode curve    Figure 5 A-C: Macro F1 vs training-set size
//	-mode removal  Figure 5 D-F: Macro F1 vs fraction of removed labels
//	-mode dmax     Table 2: Macro F1 vs maximum-degree percentile level
//	-mode emax     §3.1 ablation: Macro F1 vs subgraph edge budget
//	-mode directed §5 extension: directed vs undirected features on a
//	               degree-matched citation network
//	-mode interpret top subgraph features per entity type (the label-task
//	               counterpart of Figure 4)
//	-mode all      everything (default)
//
// The default scale is laptop-sized; -scale grows the networks toward
// the paper's sizes and -full switches the protocol to the paper's
// parameters (250 nodes/label, emax=5, 100 resamples).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"hsgf/internal/experiments"
)

func main() {
	var (
		mode   = flag.String("mode", "all", "curve | removal | dmax | all")
		scale  = flag.Float64("scale", 0.25, "network scale factor in (0,1]")
		full   = flag.Bool("full", false, "use the paper's protocol parameters")
		seed   = flag.Int64("seed", 11, "experiment seed")
		embedW = flag.Int("embed-workers", runtime.GOMAXPROCS(0),
			"parallel workers for embedding training (1 = exact serial, bitwise-deterministic)")
	)
	flag.Parse()

	cfg := experiments.DefaultLabelConfig()
	if *full {
		cfg = experiments.FullLabelConfig()
	}
	cfg.Seed = *seed
	cfg.EmbedWorkers = *embedW

	datasets, err := experiments.LoadLabelDatasets(*scale, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "labelbench:", err)
		os.Exit(1)
	}

	// Ctrl-C / SIGTERM cancels the embedding training loops cleanly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	runCurve := *mode == "curve" || *mode == "all"
	runRemoval := *mode == "removal" || *mode == "all"
	runDmax := *mode == "dmax" || *mode == "all"
	runEmax := *mode == "emax" || *mode == "all"
	runDirected := *mode == "directed" || *mode == "all"
	runInterpret := *mode == "interpret" || *mode == "all"
	if !runCurve && !runRemoval && !runDmax && !runEmax && !runDirected && !runInterpret {
		fmt.Fprintf(os.Stderr, "labelbench: unknown mode %q\n", *mode)
		os.Exit(2)
	}

	dmaxRows := make(map[string][]experiments.CurvePoint)
	var order []string
	for _, ds := range datasets {
		order = append(order, ds.Name)
		if runCurve {
			curves, err := experiments.TrainingSizeCurves(ctx, ds.Graph, cfg)
			if err != nil {
				fail(err)
			}
			experiments.WriteCurves(os.Stdout,
				fmt.Sprintf("Figure 5 (%s) — Macro F1 vs training size", ds.Name), "train", curves)
		}
		if runRemoval {
			curves, err := experiments.LabelRemovalCurves(ctx, ds.Graph, cfg)
			if err != nil {
				fail(err)
			}
			experiments.WriteCurves(os.Stdout,
				fmt.Sprintf("Figure 5 (%s) — Macro F1 vs removed labels", ds.Name), "removed", curves)
		}
		if runEmax {
			pts, err := experiments.EmaxSweep(ds.Graph, cfg)
			if err != nil {
				fail(err)
			}
			fmt.Printf("emax sensitivity (%s): Macro F1 per edge budget\n", ds.Name)
			for _, p := range pts {
				fmt.Printf("  emax=%d: %.2f±%.2f\n", int(p.X), p.Mean, p.CI95)
			}
			fmt.Println()
		}
		if runInterpret {
			tops, err := experiments.TopLabelFeatures(ds.Graph, cfg, 3)
			if err != nil {
				fail(err)
			}
			fmt.Printf("most characteristic subgraph features per entity type (%s):\n", ds.Name)
			names := ds.Graph.Alphabet().Names()
			for _, class := range names {
				for i, f := range tops[class] {
					if i == 0 {
						fmt.Printf("  %-14s", class)
					} else {
						fmt.Printf("  %-14s", "")
					}
					fmt.Printf("w=%+.2f  %s\n", f.Weight, f.Encoding)
				}
			}
			fmt.Println()
		}
		if runDmax {
			// Mirror the paper: the dense LOAD and MAG networks do not
			// finish at dmax = 100% ("the extraction did not finish due
			// to the large number of subgraphs introduced by hubs"), so
			// the unlimited level is attempted only on IMDB.
			dcfg := cfg
			if ds.Name != "IMDB" {
				var capped []float64
				for _, l := range cfg.DmaxLevels {
					if l < 1 {
						capped = append(capped, l)
					}
				}
				dcfg.DmaxLevels = capped
			}
			pts, err := experiments.DmaxSweep(ds.Graph, dcfg)
			if err != nil {
				fail(err)
			}
			dmaxRows[ds.Name] = pts
		}
	}
	if runDmax {
		experiments.WriteTable2(os.Stdout, dmaxRows, order)
	}
	if runDirected {
		dcfg := experiments.DefaultDirectedConfig()
		dcfg.Seed = *seed
		res, err := experiments.RunDirected(dcfg)
		if err != nil {
			fail(err)
		}
		fmt.Println("§5 extension — role prediction on a degree-matched directed citation network")
		fmt.Printf("  directed (typed) subgraph features:  Macro F1 %.2f±%.2f\n", res.DirectedF1, res.DirectedCI)
		fmt.Printf("  undirected subgraph features:        Macro F1 %.2f±%.2f\n", res.UndirectedF1, res.UndirectedCI)
		fmt.Printf("  (%d roles, %d sampled papers, %d arcs)\n\n", res.Roles, res.SampleSize, res.NetworkEdges)
	}
	fmt.Fprintf(os.Stderr, "labelbench: done in %v\n", time.Since(start).Round(time.Millisecond))
}

func fail(err error) {
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "labelbench: interrupted")
		os.Exit(130)
	}
	fmt.Fprintln(os.Stderr, "labelbench:", err)
	os.Exit(1)
}
