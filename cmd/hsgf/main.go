// Command hsgf extracts heterogeneous subgraph features from a graph in
// the TSV exchange format and writes them as CSV: one row per root node,
// one column per subgraph encoding.
//
// Usage:
//
//	hsgf -in graph.tsv [-emax 5] [-dmax-percentile 0.9] [-mask] \
//	     [-label author] [-workers 0] [-out features.csv] [-json]
//
// Without -label, features are extracted for every node. The CSV header
// names each column by its encoding (the paper's compact notation, e.g.
// z010z010y002), so features stay interpretable downstream.
//
// Long extractions are resilient: -root-budget and -root-deadline bound
// the work spent on any single (hub) root, truncating its census instead
// of stalling the run, and -checkpoint FILE snapshots completed roots
// periodically so a killed run restarted with -resume picks up where it
// left off. Roots that finished in degraded form are reported on stderr.
//
// With -store DIR the graph and the extracted feature set are also
// written into a crash-safe artifact store as checksummed,
// generation-numbered snapshots that hsgfd -store can boot from and
// hot-reload.
//
// With -typed, the input uses the typed TSV format (a "t directed|
// undirected" header and edge labels on every edge line) and features
// are direction- and edge-label-aware (the paper's §5 extension).
//
// With -partition N -shards-out DIR the command becomes the fleet
// partitioner instead of an extractor: the graph is cut into N
// root-owned shards with a halo of neighbours deep enough that census
// extraction inside a shard is exact (see -halo), each shard graph is
// written into DIR/shard-NNN as a crash-safe store snapshot that a
// shard hsgfd boots from, and DIR/manifest.json records the routing
// metadata hsgf-router loads.
package main

import (
	"context"
	"encoding/csv"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"syscall"
	"time"

	"hsgf"
	"hsgf/internal/graph"
	"hsgf/internal/router"
	"hsgf/internal/typed"
)

func main() {
	var (
		in       = flag.String("in", "", "input graph in TSV exchange format (required)")
		out      = flag.String("out", "", "output CSV path (default: stdout)")
		emax     = flag.Int("emax", 5, "maximum edges per subgraph")
		dmaxPct  = flag.Float64("dmax-percentile", 0, "hub cutoff as a degree percentile in (0,1); 0 disables")
		mask     = flag.Bool("mask", false, "mask the root node's label during extraction")
		label    = flag.String("label", "", "only extract features for nodes with this label")
		workers  = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		strKeys  = flag.Bool("canonical-keys", false, "use canonical-string census keys instead of the rolling hash")
		asJSON   = flag.Bool("json", false, "write a JSON FeatureSet (decoded vocabulary + sparse rows) instead of CSV")
		typedIn  = flag.Bool("typed", false, "input is a typed TSV graph (directed / edge-labelled features)")
		budget   = flag.Int64("root-budget", 0, "max subgraphs enumerated per root; 0 = unlimited")
		deadline = flag.Duration("root-deadline", 0, "max wall-clock time per root; 0 = unlimited")
		ckpt     = flag.String("checkpoint", "", "snapshot completed roots to this file during extraction")
		resume   = flag.Bool("resume", false, "load the checkpoint file and skip already-completed roots")
		ckptIv   = flag.Int("checkpoint-interval", 64, "snapshot after every N completed roots")
		storeDir = flag.String("store", "", "also write the graph and feature set into this artifact store as checksummed snapshots")

		partition = flag.Int("partition", 0, "cut the graph into this many shards for the routing tier instead of extracting")
		halo      = flag.Int("halo", 0, "shard halo depth; 0 derives the exactness minimum (emax, or emax+1 under dmax)")
		shardsOut = flag.String("shards-out", "", "directory for per-shard stores and manifest.json (required with -partition)")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	if *resume && *ckpt == "" {
		fmt.Fprintln(os.Stderr, "hsgf: -resume requires -checkpoint")
		os.Exit(2)
	}
	var err error
	if *partition > 0 {
		if *shardsOut == "" {
			err = fmt.Errorf("-partition requires -shards-out")
		} else if *typedIn {
			err = fmt.Errorf("-partition is not supported with -typed")
		} else {
			err = runPartition(*in, *shardsOut, *partition, *halo, *emax, *dmaxPct)
		}
	} else if *typedIn {
		if *ckpt != "" || *budget != 0 || *deadline != 0 || *storeDir != "" {
			err = fmt.Errorf("-checkpoint, -root-budget, -root-deadline and -store are not supported with -typed")
		} else {
			err = runTyped(*in, *out, *emax, *mask, *label, *workers)
		}
	} else {
		err = run(*in, *out, *workers, *asJSON, extractConfig{
			emax: *emax, dmaxPct: *dmaxPct, mask: *mask, label: *label, strKeys: *strKeys,
			budget: *budget, deadline: *deadline,
			ckpt: *ckpt, ckptInterval: *ckptIv, resume: *resume,
			store: *storeDir,
		})
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hsgf:", err)
		os.Exit(1)
	}
}

type extractConfig struct {
	emax    int
	dmaxPct float64
	mask    bool
	label   string
	strKeys bool

	budget       int64
	deadline     time.Duration
	ckpt         string
	ckptInterval int
	resume       bool
	store        string
}

// writeOutput runs write against stdout or the -out file. File errors —
// including Sync and Close, which a bare defer would swallow — fail the
// command, so a short write can never masquerade as success.
func writeOutput(out string, write func(io.Writer) error) error {
	if out == "" {
		return write(os.Stdout)
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	if err := syncFile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncFile flushes f to stable storage, tolerating sinks that cannot
// sync (/dev/null, pipes — EINVAL/ENOTSUP).
func syncFile(f *os.File) error {
	err := f.Sync()
	if err == nil || errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP) {
		return nil
	}
	return err
}

func run(in, out string, workers int, asJSON bool, cfg extractConfig) error {
	g, err := hsgf.ReadGraphFile(in)
	if err != nil {
		return err
	}

	var roots []hsgf.NodeID
	if cfg.label != "" {
		l, ok := g.Alphabet().Lookup(cfg.label)
		if !ok {
			return fmt.Errorf("unknown label %q (have %v)", cfg.label, g.Alphabet().Names())
		}
		roots = g.NodesWithLabel(l)
	} else {
		roots = make([]hsgf.NodeID, g.NumNodes())
		for i := range roots {
			roots[i] = hsgf.NodeID(i)
		}
	}

	opts := hsgf.Options{
		MaxEdges:            cfg.emax,
		MaskRootLabel:       cfg.mask,
		MaxSubgraphsPerRoot: cfg.budget,
		RootDeadline:        cfg.deadline,
	}
	if cfg.strKeys {
		opts.KeyMode = hsgf.CanonicalString
	}
	if cfg.dmaxPct > 0 && cfg.dmaxPct < 1 {
		opts.MaxDegree = hsgf.DegreePercentile(g, cfg.dmaxPct)
	}

	ex, err := hsgf.NewExtractor(g, opts)
	if err != nil {
		return err
	}
	var censuses []*hsgf.Census
	if cfg.ckpt != "" {
		censuses, err = ex.CensusAllCheckpoint(context.Background(), roots, workers, hsgf.CheckpointConfig{
			Path:     cfg.ckpt,
			Interval: cfg.ckptInterval,
			Resume:   cfg.resume,
		})
		if err != nil {
			return err
		}
	} else {
		censuses = ex.CensusAll(roots, workers)
	}
	reportDegradation(censuses, ex.Panics())
	vocab := hsgf.VocabularyOf(censuses)

	// Persist crash-safe snapshots alongside the flat output: the graph
	// and the feature set each become the next checksummed generation,
	// ready for hsgfd -store to boot from and hot-reload.
	if cfg.store != "" {
		st, err := hsgf.OpenStore(cfg.store, hsgf.StoreOptions{})
		if err != nil {
			return err
		}
		gGen, err := hsgf.SaveGraphSnapshots(st, g)
		if err != nil {
			return err
		}
		fs, err := hsgf.NewFeatureSet(ex, censuses, vocab)
		if err != nil {
			return err
		}
		fsGen, err := hsgf.SaveFeatureSetSnapshot(st, fs)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "hsgf: stored graph generation %d, featureset generation %d in %s\n",
			gGen, fsGen, cfg.store)
	}

	if asJSON {
		fs, err := hsgf.NewFeatureSet(ex, censuses, vocab)
		if err != nil {
			return err
		}
		if err := writeOutput(out, fs.Write); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "hsgf: %d nodes, %d features (emax=%d, dmax=%d)\n",
			len(roots), vocab.Len(), cfg.emax, opts.MaxDegree)
		return nil
	}

	err = writeOutput(out, func(w io.Writer) error {
		x := hsgf.Matrix(censuses, vocab)
		cw := csv.NewWriter(w)
		header := make([]string, 1+vocab.Len())
		header[0] = "node"
		for c := 0; c < vocab.Len(); c++ {
			header[c+1] = ex.EncodingString(vocab.Key(c))
		}
		if err := cw.Write(header); err != nil {
			return err
		}
		row := make([]string, 1+vocab.Len())
		for i, root := range roots {
			row[0] = strconv.Itoa(int(root))
			for c, v := range x[i] {
				row[c+1] = strconv.FormatFloat(v, 'f', -1, 64)
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
		cw.Flush()
		return cw.Error()
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "hsgf: %d nodes, %d features (emax=%d, dmax=%d)\n",
		len(roots), vocab.Len(), cfg.emax, opts.MaxDegree)
	return nil
}

// reportDegradation summarises incomplete censuses on stderr so degraded
// feature rows never pass silently.
func reportDegradation(censuses []*hsgf.Census, panics []hsgf.PanicRecord) {
	counts := map[hsgf.CensusFlag]int{}
	for _, c := range censuses {
		if c == nil || c.Flags == 0 {
			continue
		}
		for _, f := range []hsgf.CensusFlag{
			hsgf.FlagBudgetExceeded, hsgf.FlagDeadlineExceeded, hsgf.FlagCancelled, hsgf.FlagPanicked,
		} {
			if c.Flags&f != 0 {
				counts[f]++
			}
		}
	}
	for _, f := range []hsgf.CensusFlag{
		hsgf.FlagBudgetExceeded, hsgf.FlagDeadlineExceeded, hsgf.FlagCancelled, hsgf.FlagPanicked,
	} {
		if counts[f] > 0 {
			fmt.Fprintf(os.Stderr, "hsgf: warning: %d roots %s\n", counts[f], f)
		}
	}
	for _, p := range panics {
		fmt.Fprintf(os.Stderr, "hsgf: warning: worker panic at root %d: %s\n", p.Root, p.Value)
	}
}

// runTyped extracts typed (directed / edge-labelled) features and writes
// them as CSV.
func runTyped(in, out string, emax int, mask bool, label string, workers int) error {
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	g, err := typed.ReadTSV(f)
	if err != nil {
		return err
	}

	var roots []hsgf.NodeID
	if label != "" {
		l, ok := g.NodeAlphabet().Lookup(label)
		if !ok {
			return fmt.Errorf("unknown label %q (have %v)", label, g.NodeAlphabet().Names())
		}
		for v := 0; v < g.NumNodes(); v++ {
			if g.Label(hsgf.NodeID(v)) == l {
				roots = append(roots, hsgf.NodeID(v))
			}
		}
	} else {
		roots = make([]hsgf.NodeID, g.NumNodes())
		for i := range roots {
			roots[i] = hsgf.NodeID(i)
		}
	}

	ex, err := typed.NewExtractor(g, typed.Options{MaxEdges: emax, MaskRootLabel: mask})
	if err != nil {
		return err
	}
	censuses := ex.CensusAll(roots, workers)

	// Column vocabulary in ascending key order.
	keySet := map[uint64]bool{}
	for _, c := range censuses {
		for k := range c.Counts {
			keySet[k] = true
		}
	}
	keys := make([]uint64, 0, len(keySet))
	for k := range keySet {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	col := make(map[uint64]int, len(keys))
	for i, k := range keys {
		col[k] = i
	}

	err = writeOutput(out, func(w io.Writer) error {
		cw := csv.NewWriter(w)
		header := make([]string, 1+len(keys))
		header[0] = "node"
		for i, k := range keys {
			header[i+1] = ex.EncodingString(k)
		}
		if err := cw.Write(header); err != nil {
			return err
		}
		row := make([]string, 1+len(keys))
		for i, root := range roots {
			row[0] = strconv.Itoa(int(root))
			for j := range keys {
				row[j+1] = "0"
			}
			for k, n := range censuses[i].Counts {
				row[col[k]+1] = strconv.FormatInt(n, 10)
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
		cw.Flush()
		return cw.Error()
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "hsgf: %d nodes, %d typed features (emax=%d)\n", len(roots), len(keys), emax)
	return nil
}

// runPartition cuts the graph for the routing tier: per-shard store
// snapshots plus the routing manifest. The halo depth defaults to the
// exactness minimum — emax without a hub cutoff (a connected subgraph
// with <= emax edges never leaves the root's emax-ball), emax+1 with
// one (the census consults the degree of every node entering a
// subgraph, so boundary nodes one step past the ball must keep their
// full-graph degree).
func runPartition(in, outDir string, nShards, halo, emax int, dmaxPct float64) error {
	g, err := hsgf.ReadGraphFile(in)
	if err != nil {
		return err
	}
	if halo <= 0 {
		halo = emax
		if dmaxPct > 0 && dmaxPct < 1 {
			halo = emax + 1
		}
	}
	plans, err := graph.PartitionByRoot(g, graph.PartitionConfig{NumShards: nShards, HaloDepth: halo})
	if err != nil {
		return err
	}
	if err := graph.ValidatePartition(g, plans); err != nil {
		return err
	}
	for _, p := range plans {
		dir := filepath.Join(outDir, fmt.Sprintf("shard-%03d", p.Shard))
		st, err := hsgf.OpenStore(dir, hsgf.StoreOptions{})
		if err != nil {
			return err
		}
		gen, err := hsgf.SaveGraphSnapshots(st, p.Graph)
		if err != nil {
			return fmt.Errorf("shard %d: %w", p.Shard, err)
		}
		fmt.Fprintf(os.Stderr, "hsgf: shard %d: %d nodes (%d owned roots), %d edges -> %s (generation %d)\n",
			p.Shard, p.Graph.NumNodes(), len(p.OwnedRoots), p.Graph.NumEdges(), dir, gen)
	}
	m := router.BuildManifest(g.NumNodes(), halo, plans)
	path := filepath.Join(outDir, "manifest.json")
	if err := router.WriteManifest(path, m); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "hsgf: wrote routing manifest %s (%d shards, halo depth %d)\n", path, nShards, halo)
	return nil
}
