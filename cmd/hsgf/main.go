// Command hsgf extracts heterogeneous subgraph features from a graph in
// the TSV exchange format and writes them as CSV: one row per root node,
// one column per subgraph encoding.
//
// Usage:
//
//	hsgf -in graph.tsv [-emax 5] [-dmax-percentile 0.9] [-mask] \
//	     [-label author] [-workers 0] [-out features.csv] [-json]
//
// Without -label, features are extracted for every node. The CSV header
// names each column by its encoding (the paper's compact notation, e.g.
// z010z010y002), so features stay interpretable downstream.
//
// With -typed, the input uses the typed TSV format (a "t directed|
// undirected" header and edge labels on every edge line) and features
// are direction- and edge-label-aware (the paper's §5 extension).
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"

	"hsgf"
	"hsgf/internal/typed"
)

func main() {
	var (
		in      = flag.String("in", "", "input graph in TSV exchange format (required)")
		out     = flag.String("out", "", "output CSV path (default: stdout)")
		emax    = flag.Int("emax", 5, "maximum edges per subgraph")
		dmaxPct = flag.Float64("dmax-percentile", 0, "hub cutoff as a degree percentile in (0,1); 0 disables")
		mask    = flag.Bool("mask", false, "mask the root node's label during extraction")
		label   = flag.String("label", "", "only extract features for nodes with this label")
		workers = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		strKeys = flag.Bool("canonical-keys", false, "use canonical-string census keys instead of the rolling hash")
		asJSON  = flag.Bool("json", false, "write a JSON FeatureSet (decoded vocabulary + sparse rows) instead of CSV")
		typedIn = flag.Bool("typed", false, "input is a typed TSV graph (directed / edge-labelled features)")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}
	var err error
	if *typedIn {
		err = runTyped(*in, *out, *emax, *mask, *label, *workers)
	} else {
		err = run(*in, *out, *emax, *dmaxPct, *mask, *label, *workers, *strKeys, *asJSON)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "hsgf:", err)
		os.Exit(1)
	}
}

func run(in, out string, emax int, dmaxPct float64, mask bool, label string, workers int, strKeys, asJSON bool) error {
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	g, err := hsgf.ReadTSV(f)
	if err != nil {
		return err
	}

	var roots []hsgf.NodeID
	if label != "" {
		l, ok := g.Alphabet().Lookup(label)
		if !ok {
			return fmt.Errorf("unknown label %q (have %v)", label, g.Alphabet().Names())
		}
		roots = g.NodesWithLabel(l)
	} else {
		roots = make([]hsgf.NodeID, g.NumNodes())
		for i := range roots {
			roots[i] = hsgf.NodeID(i)
		}
	}

	opts := hsgf.Options{MaxEdges: emax, MaskRootLabel: mask}
	if strKeys {
		opts.KeyMode = hsgf.CanonicalString
	}
	if dmaxPct > 0 && dmaxPct < 1 {
		opts.MaxDegree = hsgf.DegreePercentile(g, dmaxPct)
	}

	ex, err := hsgf.NewExtractor(g, opts)
	if err != nil {
		return err
	}
	censuses := ex.CensusAll(roots, workers)
	vocab := hsgf.VocabularyOf(censuses)

	w := os.Stdout
	if out != "" {
		w, err = os.Create(out)
		if err != nil {
			return err
		}
		defer w.Close()
	}
	if asJSON {
		fs, err := hsgf.NewFeatureSet(ex, censuses, vocab)
		if err != nil {
			return err
		}
		if err := fs.Write(w); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "hsgf: %d nodes, %d features (emax=%d, dmax=%d)\n",
			len(roots), vocab.Len(), emax, opts.MaxDegree)
		return nil
	}

	x := hsgf.Matrix(censuses, vocab)
	cw := csv.NewWriter(w)
	header := make([]string, 1+vocab.Len())
	header[0] = "node"
	for c := 0; c < vocab.Len(); c++ {
		header[c+1] = ex.EncodingString(vocab.Key(c))
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, 1+vocab.Len())
	for i, root := range roots {
		row[0] = strconv.Itoa(int(root))
		for c, v := range x[i] {
			row[c+1] = strconv.FormatFloat(v, 'f', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	fmt.Fprintf(os.Stderr, "hsgf: %d nodes, %d features (emax=%d, dmax=%d)\n",
		len(roots), vocab.Len(), emax, opts.MaxDegree)
	return cw.Error()
}

// runTyped extracts typed (directed / edge-labelled) features and writes
// them as CSV.
func runTyped(in, out string, emax int, mask bool, label string, workers int) error {
	f, err := os.Open(in)
	if err != nil {
		return err
	}
	defer f.Close()
	g, err := typed.ReadTSV(f)
	if err != nil {
		return err
	}

	var roots []hsgf.NodeID
	if label != "" {
		l, ok := g.NodeAlphabet().Lookup(label)
		if !ok {
			return fmt.Errorf("unknown label %q (have %v)", label, g.NodeAlphabet().Names())
		}
		for v := 0; v < g.NumNodes(); v++ {
			if g.Label(hsgf.NodeID(v)) == l {
				roots = append(roots, hsgf.NodeID(v))
			}
		}
	} else {
		roots = make([]hsgf.NodeID, g.NumNodes())
		for i := range roots {
			roots[i] = hsgf.NodeID(i)
		}
	}

	ex, err := typed.NewExtractor(g, typed.Options{MaxEdges: emax, MaskRootLabel: mask})
	if err != nil {
		return err
	}
	censuses := ex.CensusAll(roots, workers)

	// Column vocabulary in ascending key order.
	keySet := map[uint64]bool{}
	for _, c := range censuses {
		for k := range c.Counts {
			keySet[k] = true
		}
	}
	keys := make([]uint64, 0, len(keySet))
	for k := range keySet {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	col := make(map[uint64]int, len(keys))
	for i, k := range keys {
		col[k] = i
	}

	w := os.Stdout
	if out != "" {
		w, err = os.Create(out)
		if err != nil {
			return err
		}
		defer w.Close()
	}
	cw := csv.NewWriter(w)
	header := make([]string, 1+len(keys))
	header[0] = "node"
	for i, k := range keys {
		header[i+1] = ex.EncodingString(k)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, 1+len(keys))
	for i, root := range roots {
		row[0] = strconv.Itoa(int(root))
		for j := range keys {
			row[j+1] = "0"
		}
		for k, n := range censuses[i].Counts {
			row[col[k]+1] = strconv.FormatInt(n, 10)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	fmt.Fprintf(os.Stderr, "hsgf: %d nodes, %d typed features (emax=%d)\n", len(roots), len(keys), emax)
	return cw.Error()
}
