// Command scalebench runs the tracked bench-scale ladder: at each rung
// (10^4, 10^5, 10^6 nodes by default) it generates a hierarchical
// community network, builds the CSR graph, round-trips it through both
// snapshot formats, and measures what production cares about at that
// scale — build time, snapshot encode/decode time for binary vs TSV,
// bytes per edge, census throughput, serve-path p50/p99, and peak RSS.
// Results go to BENCH_scale.json (`make bench-scale`), one JSON object
// per rung, so successive PRs can diff the scaling trajectory the same
// way BENCH_census.json tracks the hot path.
//
// The committed ladder is a contract: scalebench refuses to overwrite
// an existing report with one covering fewer rungs (a smoke run must
// not silently shrink the tracked file); -force overrides, and the
// smoke target writes to a scratch path instead.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"hsgf/internal/core"
	"hsgf/internal/datagen"
	"hsgf/internal/graph"
	"hsgf/internal/serve"
	"hsgf/internal/store"
	"hsgf/internal/sysres"
)

// rung is one ladder step's measurements.
type rung struct {
	Nodes  int `json:"nodes"`
	Edges  int `json:"edges"`
	Labels int `json:"labels"`

	GenerateSeconds float64 `json:"generate_seconds"`
	BuildSeconds    float64 `json:"build_seconds"`

	TSVEncodeSeconds float64 `json:"tsv_encode_seconds"`
	TSVDecodeSeconds float64 `json:"tsv_decode_seconds"`
	TSVBytes         int     `json:"tsv_bytes"`
	TSVBytesPerEdge  float64 `json:"tsv_bytes_per_edge"`

	BinEncodeSeconds float64 `json:"bin_encode_seconds"`
	BinDecodeSeconds float64 `json:"bin_decode_seconds"`
	BinBytes         int     `json:"bin_bytes"`
	BinBytesPerEdge  float64 `json:"bin_bytes_per_edge"`

	// BinLoadSpeedup is TSV decode time over binary decode time — the
	// ladder's headline ratio (the binary boot path must widen this
	// gap as rungs grow, >= 10x at the top rung).
	BinLoadSpeedup float64 `json:"bin_load_speedup"`

	// StoreLoadSeconds is the full production boot path: newest
	// generation through the store's mapped loader, SHA-256
	// verification included. Mmapped reports whether the zero-copy
	// path engaged.
	StoreLoadSeconds float64 `json:"store_load_seconds"`
	Mmapped          bool    `json:"mmapped"`

	CensusRoots           int     `json:"census_roots"`
	CensusRootsPerSec     float64 `json:"census_roots_per_sec"`
	CensusSubgraphsPerSec float64 `json:"census_subgraphs_per_sec"`

	ServeRequests int     `json:"serve_requests"`
	ServeP50Ns    float64 `json:"serve_p50_ns"`
	ServeP99Ns    float64 `json:"serve_p99_ns"`

	MaxRSSBytes int64 `json:"max_rss_bytes"`
}

type report struct {
	Generated  string `json:"generated"`
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	GoMaxProcs int    `json:"gomaxprocs"`
	EMax       int    `json:"emax"`
	DMax       int    `json:"dmax"`
	Rungs      []rung `json:"rungs"`
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "scalebench: "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	var (
		out        = flag.String("o", "BENCH_scale.json", "output path ('-' for stdout)")
		rungsFlag  = flag.String("rungs", "10000,100000,1000000", "comma-separated node counts")
		emax       = flag.Int("emax", 3, "census max edges")
		dmax       = flag.Int("dmax", 64, "census degree cutoff (0 = none)")
		censusRoot = flag.Int("census-roots", 512, "roots per census throughput measurement")
		serveSec   = flag.Float64("serve-seconds", 2, "wall-clock budget per serve measurement")
		force      = flag.Bool("force", false, "overwrite the output even if it covers more rungs")
	)
	flag.Parse()

	var sizes []int
	for _, s := range strings.Split(*rungsFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 100 {
			fatalf("bad rung %q (need integers >= 100)", s)
		}
		sizes = append(sizes, n)
	}

	// Refuse to shrink the committed ladder: a partial run overwriting
	// the tracked file would erase the very trajectory it exists to
	// record.
	if *out != "-" && !*force {
		if prev, err := os.ReadFile(*out); err == nil {
			var old report
			if json.Unmarshal(prev, &old) == nil && len(old.Rungs) > len(sizes) {
				fatalf("%s covers %d rungs, this run only %d; use -force to overwrite or -o for a scratch path",
					*out, len(old.Rungs), len(sizes))
			}
		}
	}

	rep := report{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		EMax:       *emax,
		DMax:       *dmax,
	}
	for _, n := range sizes {
		r := runRung(n, *emax, *dmax, *censusRoot, *serveSec)
		rep.Rungs = append(rep.Rungs, r)
		fmt.Fprintf(os.Stderr,
			"scalebench: %8d nodes %9d edges  build %6.2fs  bin %5.1fB/edge dec %7.3fs  tsv dec %7.3fs (%5.1fx)  census %7.0f roots/s  serve p99 %6.0fµs  rss %dMB\n",
			r.Nodes, r.Edges, r.BuildSeconds, r.BinBytesPerEdge, r.BinDecodeSeconds,
			r.TSVDecodeSeconds, r.BinLoadSpeedup, r.CensusRootsPerSec, r.ServeP99Ns/1e3,
			r.MaxRSSBytes>>20)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatalf("%v", err)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "scalebench: wrote %s\n", *out)
}

func runRung(n, emax, dmax, censusRoots int, serveSec float64) rung {
	var r rung
	r.Nodes = n

	// Generate (streaming emission into the builder) and Build are the
	// two halves of graph construction; the ladder times them apart so
	// a Build regression cannot hide inside generator noise.
	cfg := datagen.DefaultHierarchicalConfig(n)
	b := graph.NewBuilderWithAlphabet(graph.MustAlphabet(cfg.Labels...))
	t0 := time.Now()
	if _, err := datagen.PopulateHierarchical(cfg, b); err != nil {
		fatalf("rung %d: %v", n, err)
	}
	r.GenerateSeconds = time.Since(t0).Seconds()

	t0 = time.Now()
	g, err := b.Build()
	if err != nil {
		fatalf("rung %d: %v", n, err)
	}
	r.BuildSeconds = time.Since(t0).Seconds()
	r.Edges = g.NumEdges()
	r.Labels = g.NumLabels()

	// Snapshot formats, encode and decode. TSV decode includes the
	// Build it forces — that is its real boot cost; binary decode is
	// measured in aliasing mode, its real boot mode.
	var tsv bytes.Buffer
	t0 = time.Now()
	if err := graph.WriteTSV(&tsv, g); err != nil {
		fatalf("rung %d: %v", n, err)
	}
	r.TSVEncodeSeconds = time.Since(t0).Seconds()
	r.TSVBytes = tsv.Len()
	r.TSVBytesPerEdge = float64(tsv.Len()) / float64(g.NumEdges())

	t0 = time.Now()
	if _, err := graph.ReadTSV(bytes.NewReader(tsv.Bytes())); err != nil {
		fatalf("rung %d: %v", n, err)
	}
	r.TSVDecodeSeconds = time.Since(t0).Seconds()

	t0 = time.Now()
	payload, err := graph.EncodeBinary(g, 0)
	if err != nil {
		fatalf("rung %d: %v", n, err)
	}
	r.BinEncodeSeconds = time.Since(t0).Seconds()
	r.BinBytes = len(payload)
	r.BinBytesPerEdge = float64(len(payload)) / float64(g.NumEdges())

	t0 = time.Now()
	_, aliased, err := graph.DecodeBinary(payload, true)
	if err != nil {
		fatalf("rung %d: %v", n, err)
	}
	r.BinDecodeSeconds = time.Since(t0).Seconds()
	r.Mmapped = aliased
	if r.BinDecodeSeconds > 0 {
		r.BinLoadSpeedup = r.TSVDecodeSeconds / r.BinDecodeSeconds
	}

	// The production boot path: a store write, then the mapped load
	// with full envelope verification.
	dir, err := os.MkdirTemp("", "scalebench-*")
	if err != nil {
		fatalf("%v", err)
	}
	defer os.RemoveAll(dir)
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		fatalf("%v", err)
	}
	if _, err := core.SaveGraphBinarySnapshot(st, g); err != nil {
		fatalf("rung %d: %v", n, err)
	}
	t0 = time.Now()
	mg, _, err := core.LoadGraphSnapshotMapped(st)
	if err != nil {
		fatalf("rung %d: %v", n, err)
	}
	r.StoreLoadSeconds = time.Since(t0).Seconds()

	// Census throughput and the serve path both run over the mapped
	// graph — the ladder measures the deployment shape, not the
	// freshly-built one.
	opts := core.Options{MaxEdges: emax, MaskRootLabel: true, MaxDegree: dmax}
	ex, err := core.NewExtractor(mg, opts)
	if err != nil {
		fatalf("rung %d: %v", n, err)
	}
	roots := sampleRoots(mg, censusRoots)
	ex.CensusAll(roots[:min(8, len(roots))], 0) // warm worker pools
	t0 = time.Now()
	var subgraphs int64
	for _, c := range ex.CensusAll(roots, 0) {
		subgraphs += c.Subgraphs
	}
	censusT := time.Since(t0).Seconds()
	r.CensusRoots = len(roots)
	r.CensusRootsPerSec = float64(len(roots)) / censusT
	r.CensusSubgraphsPerSec = float64(subgraphs) / censusT

	p50, p99, reqs := benchServe(ex, roots, serveSec)
	r.ServeRequests = reqs
	r.ServeP50Ns = float64(p50.Nanoseconds())
	r.ServeP99Ns = float64(p99.Nanoseconds())

	r.MaxRSSBytes = sysres.MaxRSSBytes()
	return r
}

func sampleRoots(g *graph.Graph, n int) []graph.NodeID {
	if n > g.NumNodes() {
		n = g.NumNodes()
	}
	roots := make([]graph.NodeID, n)
	stride := g.NumNodes() / n
	for i := range roots {
		roots[i] = graph.NodeID(i * stride)
	}
	return roots
}

// benchServe drives the daemon's POST /v1/features handler with 8-root
// batches (cache warm, the production steady state) for ~sec seconds
// and reports per-request latency percentiles.
func benchServe(ex *core.Extractor, roots []graph.NodeID, sec float64) (p50, p99 time.Duration, n int) {
	srv := serve.NewServer(ex, serve.Config{})
	handler := srv.Handler()
	batch := make([]int64, 0, 8)
	for i := 0; i < 8 && i < len(roots); i++ {
		batch = append(batch, int64(roots[i]))
	}
	body, err := json.Marshal(serve.FeaturesRequest{Roots: batch})
	if err != nil {
		fatalf("%v", err)
	}
	do := func() time.Duration {
		req := httptest.NewRequest(http.MethodPost, "/v1/features", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		t0 := time.Now()
		handler.ServeHTTP(rec, req)
		d := time.Since(t0)
		if rec.Code != http.StatusOK {
			fatalf("serve request returned %d: %s", rec.Code, rec.Body)
		}
		return d
	}
	do() // warm extractor pool and row cache

	budget := time.Duration(sec * float64(time.Second))
	start := time.Now()
	var lats []time.Duration
	for i := 0; (i < 100 || time.Since(start) < budget) && i < 1<<20; i++ {
		lats = append(lats, do())
	}
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })
	pct := func(q float64) time.Duration { return lats[int(q*float64(len(lats)-1))] }
	return pct(0.50), pct(0.99), len(lats)
}
