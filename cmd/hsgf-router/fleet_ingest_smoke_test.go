//go:build smoke

// Fault-injection smoke suite for fleet-wide ordered ingest: builds the
// real hsgfd and hsgf-router binaries under the race detector, boots a
// 2-shard x 2-replica follower fleet plus the sequencing router, and
// drives the crash windows the sequencer log exists for:
//
//   - replica SIGKILL mid-stream: batches go 503 fleet_partial_apply
//     (never a false ack), the restarted replica is caught up by the
//     router's background repair, and every refused batch retries into
//     an idempotent replayed ack with its original fleet sequence,
//   - router SIGKILL between sequencing and fan-out (the
//     HSGF_ROUTER_CRASH_AFTER_SEQ hook): the durable-but-unfanned batch
//     is replayed to the fleet on restart and the client retry acks
//     replayed,
//   - duplicate-replay storm: every batch re-sent; all ack replayed and
//     no shard's state moves,
//   - torn sequencer tail: a partial frame after the last fsynced
//     record is truncated on boot and sequencing resumes at the next
//     sequence,
//
// and closes with the acceptance oracle: a single uninterrupted hsgfd
// ingest daemon over the full graph is fed the identical batch stream,
// and every root's census through the router must be byte-equal to the
// oracle's — including roots created by ingest after partition time.
//
// Gated behind the "smoke" build tag; run with `make fleet-ingest-smoke`.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hsgf/internal/graph"
	"hsgf/internal/router"
)

const (
	fiShards   = 2
	fiReplicas = 2
	fiNodes    = 200
	fiEmax     = 2
)

// fiBatchBody is the k-th batch of the canonical stream: grow by one
// node wired to node k, plus a relabel. The new node's global ID is
// fiNodes+k, so any lost or double-applied batch shifts every later ID
// and surfaces as a census mismatch against the oracle.
func fiBatchBody(k int) string {
	labels := []string{"loc", "org", "act"}
	return fmt.Sprintf(
		`{"batch_id":"fleet-%d","mutations":[`+
			`{"op":"add_node","label":"org"},`+
			`{"op":"add_edge","u":%d,"v":%d},`+
			`{"op":"relabel","u":%d,"label":"%s"}]}`,
		k, fiNodes+k, k, (k*7)%fiNodes, labels[k%3])
}

type fleetAck struct {
	FleetSeq  uint64 `json:"fleet_seq"`
	Replayed  bool   `json:"replayed"`
	Watermark uint64 `json:"watermark"`
}

// postIngest sends one batch and decodes either the ack or the typed
// error reason.
func postIngest(base, body string) (code int, ack fleetAck, reason string, raw []byte, err error) {
	resp, err := http.Post(base+"/v1/ingest", "application/json", strings.NewReader(body))
	if err != nil {
		return 0, ack, "", nil, err
	}
	defer resp.Body.Close()
	raw, _ = io.ReadAll(resp.Body)
	if resp.StatusCode == http.StatusOK {
		err = json.Unmarshal(raw, &ack)
	} else {
		var e struct {
			Reason string `json:"reason"`
		}
		_ = json.Unmarshal(raw, &e)
		reason = e.Reason
	}
	return resp.StatusCode, ack, reason, raw, err
}

// mustIngest requires a fresh 200 ack with the given sequence.
func mustIngest(t *testing.T, base string, k int, wantSeq uint64) {
	t.Helper()
	code, ack, reason, raw, err := postIngest(base, fiBatchBody(k))
	if err != nil || code != http.StatusOK || ack.Replayed || ack.FleetSeq != wantSeq {
		t.Fatalf("batch %d: code %d reason %q ack %+v err %v (%s)", k, code, reason, ack, err, raw)
	}
}

// routerWatermark polls /debug/stats until the fleet watermark reaches
// want or the deadline passes.
func routerWatermark(t *testing.T, base string, want uint64, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	last := uint64(0)
	for {
		resp, err := http.Get(base + "/debug/stats")
		if err == nil {
			var stats struct {
				FleetWatermark uint64 `json:"fleet_watermark"`
			}
			err = json.NewDecoder(resp.Body).Decode(&stats)
			resp.Body.Close()
			if err == nil {
				last = stats.FleetWatermark
				if last >= want {
					return
				}
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet watermark stuck at %d, want %d", last, want)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// censuses fetches content-keyed count maps for all n roots via base.
func censuses(t *testing.T, base string, n int) []map[string]int64 {
	t.Helper()
	roots := make([]int64, n)
	for i := range roots {
		roots[i] = int64(i)
	}
	body, _ := json.Marshal(map[string]any{"roots": roots, "deadline_ms": 60000})
	resp, err := http.Post(base+"/v1/features", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("features = %d: %s", resp.StatusCode, raw)
	}
	var feat struct {
		Rows []struct {
			Root   int64            `json:"root"`
			Flags  string           `json:"flags"`
			Counts map[string]int64 `json:"counts"`
		} `json:"rows"`
		Degraded bool `json:"degraded"`
	}
	if err := json.Unmarshal(raw, &feat); err != nil {
		t.Fatal(err)
	}
	if feat.Degraded {
		t.Fatalf("census extraction degraded at %s", base)
	}
	out := make([]map[string]int64, n)
	for _, r := range feat.Rows {
		if r.Flags != "ok" {
			t.Fatalf("root %d flagged %q", r.Root, r.Flags)
		}
		out[r.Root] = r.Counts
	}
	return out
}

// shardFingerprint reads one replica's serving fingerprint.
func shardFingerprint(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/v1/meta")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var meta struct {
		Fingerprint string `json:"fingerprint"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&meta); err != nil {
		t.Fatal(err)
	}
	return meta.Fingerprint
}

// writeTSV writes g to path in the TSV exchange format.
func writeTSV(t *testing.T, path string, g *graph.Graph) {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteTSV(f, g); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestFleetIngestSmoke(t *testing.T) {
	tmp := t.TempDir()
	// Same hub-and-periphery shape as the router smoke, smaller.
	g := buildSmokeGraphN(t, fiNodes, 43)

	// Full-graph TSV (router's -ingest-graph and the oracle's seed) and
	// one TSV per shard plan (each follower replica's seed).
	fullTSV := filepath.Join(tmp, "graph.tsv")
	writeTSV(t, fullTSV, g)
	plans, err := graph.PartitionByRoot(g, graph.PartitionConfig{NumShards: fiShards, HaloDepth: fiEmax})
	if err != nil {
		t.Fatal(err)
	}
	shardTSVs := make([]string, fiShards)
	for _, p := range plans {
		shardTSVs[p.Shard] = filepath.Join(tmp, fmt.Sprintf("shard-%d.tsv", p.Shard))
		writeTSV(t, shardTSVs[p.Shard], p.Graph)
	}
	manifestPath := filepath.Join(tmp, "manifest.json")
	if err := router.WriteManifest(manifestPath, router.BuildManifest(g.NumNodes(), fiEmax, plans)); err != nil {
		t.Fatal(err)
	}
	seqlogPath := filepath.Join(tmp, "seq.wal")

	hsgfdBin := filepath.Join(tmp, "hsgfd")
	routerBin := filepath.Join(tmp, "hsgf-router")
	for bin, dir := range map[string]string{hsgfdBin: "../hsgfd", routerBin: "."} {
		build := exec.Command("go", "build", "-race", "-o", bin, dir)
		if out, err := build.CombinedOutput(); err != nil {
			t.Fatalf("go build -race %s: %v\n%s", dir, err, out)
		}
	}

	// Boot the follower fleet: per-replica stores (each replica owns its
	// WAL), follower mode so only router-sequenced batches are accepted.
	daemonArgs := func(si, ri int, addr string) []string {
		return []string{
			"-store", filepath.Join(tmp, fmt.Sprintf("store-%d-%d", si, ri)),
			"-in", shardTSVs[si],
			"-ingest", "-fleet-follower",
			"-emax", fmt.Sprint(fiEmax),
			"-addr", addr,
			"-drain-grace", "10s",
		}
	}
	daemons := make([][]*proc, fiShards)
	var shardFlags []string
	for si := 0; si < fiShards; si++ {
		var urls []string
		for ri := 0; ri < fiReplicas; ri++ {
			p := startProc(t, fmt.Sprintf("hsgfd[%d/%d]", si, ri), hsgfdBin, daemonArgs(si, ri, "127.0.0.1:0")...)
			daemons[si] = append(daemons[si], p)
			urls = append(urls, "http://"+p.addr)
		}
		shardFlags = append(shardFlags, "-shard", fmt.Sprintf("%d=%s", si, strings.Join(urls, ",")))
	}

	// The oracle: one uninterrupted full-graph ingest daemon fed the
	// identical stream (in global IDs, which is what clients send the
	// router too).
	oracle := startProc(t, "oracle", hsgfdBin,
		"-store", filepath.Join(tmp, "oracle-store"), "-in", fullTSV,
		"-ingest", "-emax", fmt.Sprint(fiEmax), "-addr", "127.0.0.1:0", "-drain-grace", "10s")
	oracleBase := "http://" + oracle.addr

	routerArgs := append([]string{
		"-manifest", manifestPath,
		"-seqlog", seqlogPath,
		"-ingest-graph", fullTSV,
		"-ingest-ack-timeout", "2s",
		"-addr", "127.0.0.1:0",
		"-probe-interval", "100ms",
		"-fail-after", "1",
		"-retry-base", "20ms",
		"-drain-grace", "10s",
	}, shardFlags...)
	rt := startProc(t, "hsgf-router", routerBin, routerArgs...)
	base := "http://" + rt.addr

	// Phase 0 — healthy fleet: five batches ack in sequence order.
	for k := 0; k < 5; k++ {
		mustIngest(t, base, k, uint64(k+1))
	}

	// Phase 1 — replica SIGKILL mid-stream. Batches keep being durably
	// sequenced; any batch whose fan-out needs the dead replica answers
	// 503 fleet_partial_apply with the watermark — never a false ack.
	victim := daemons[0][0]
	victimAddr := victim.addr
	if err := victim.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_, _ = victim.cmd.Process.Wait()
	partial := 0
	for k := 5; k < 8; k++ {
		code, ack, reason, raw, err := postIngest(base, fiBatchBody(k))
		if err != nil {
			t.Fatalf("batch %d with dead replica: %v", k, err)
		}
		switch code {
		case http.StatusOK:
			if ack.FleetSeq != uint64(k+1) {
				t.Fatalf("batch %d: seq %d, want %d", k, ack.FleetSeq, k+1)
			}
		case http.StatusServiceUnavailable:
			partial++
			if reason != "fleet_partial_apply" {
				t.Fatalf("batch %d: 503 reason %q, want fleet_partial_apply (%s)", k, reason, raw)
			}
		default:
			t.Fatalf("batch %d with dead replica: code %d (%s)", k, code, raw)
		}
	}
	if partial == 0 {
		t.Fatal("no batch went fleet_partial_apply while a replica was dead; the fault was not exercised")
	}
	t.Logf("replica kill: %d/3 batches honestly refused with fleet_partial_apply", partial)

	// Restart the replica on its old address and store; the router's
	// background repair must catch it up and complete every sequenced
	// batch without any client action.
	daemons[0][0] = startProc(t, "hsgfd[0/0]r", hsgfdBin, daemonArgs(0, 0, victimAddr)...)
	routerWatermark(t, base, 8, 30*time.Second)
	// Client retries of the refused batches ack idempotently with their
	// original sequences.
	for k := 5; k < 8; k++ {
		code, ack, reason, raw, err := postIngest(base, fiBatchBody(k))
		if err != nil || code != http.StatusOK || !ack.Replayed || ack.FleetSeq != uint64(k+1) {
			t.Fatalf("retry of batch %d after repair: code %d reason %q ack %+v err %v (%s)", k, code, reason, ack, err, raw)
		}
	}

	// Phase 2 — router SIGKILL between sequencing and fan-out. A fresh
	// router with the crash hook armed exits the instant sequence 9 is
	// durable; the batch is sequenced but no shard ever saw it.
	if err := rt.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_, _ = rt.cmd.Process.Wait()
	rt = startProcEnv(t, "hsgf-router[crash]", routerBin, []string{"HSGF_ROUTER_CRASH_AFTER_SEQ=9"}, routerArgs...)
	base = "http://" + rt.addr
	routerWatermark(t, base, 8, 30*time.Second) // boot replay settles first
	if code, _, _, _, err := postIngest(base, fiBatchBody(8)); err == nil && code == http.StatusOK {
		t.Fatal("batch 8 acked despite the crash hook; the crash window was not exercised")
	}
	_, _ = rt.cmd.Process.Wait()

	// Restart without the hook: boot replay must deliver the orphaned
	// sequence 9 to the fleet, and the client retry acks replayed.
	rt = startProc(t, "hsgf-router[2]", routerBin, routerArgs...)
	base = "http://" + rt.addr
	routerWatermark(t, base, 9, 30*time.Second)
	if code, ack, reason, raw, err := postIngest(base, fiBatchBody(8)); err != nil || code != http.StatusOK || !ack.Replayed || ack.FleetSeq != 9 {
		t.Fatalf("retry of orphaned batch 8: code %d reason %q ack %+v err %v (%s)", code, reason, ack, err, raw)
	}

	// Phase 3 — duplicate-replay storm: every batch re-sent; all must
	// ack replayed with original sequences and no shard's state moves.
	fpBefore := make([][]string, fiShards)
	for si := range daemons {
		for _, d := range daemons[si] {
			fpBefore[si] = append(fpBefore[si], shardFingerprint(t, "http://"+d.addr))
		}
	}
	for k := 0; k < 9; k++ {
		code, ack, reason, raw, err := postIngest(base, fiBatchBody(k))
		if err != nil || code != http.StatusOK || !ack.Replayed || ack.FleetSeq != uint64(k+1) {
			t.Fatalf("storm batch %d: code %d reason %q ack %+v err %v (%s)", k, code, reason, ack, err, raw)
		}
	}
	for si := range daemons {
		for ri, d := range daemons[si] {
			if fp := shardFingerprint(t, "http://"+d.addr); fp != fpBefore[si][ri] {
				t.Fatalf("replay storm moved shard %d replica %d: %s -> %s", si, ri, fpBefore[si][ri], fp)
			}
		}
	}

	// Phase 4 — torn sequencer tail: kill the router mid-life, append a
	// partial frame after the last fsynced record, and require the next
	// boot to truncate exactly the torn suffix and resume at sequence 10.
	if err := rt.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_, _ = rt.cmd.Process.Wait()
	f, err := os.OpenFile(seqlogPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("WREC\x0c\x00\x00\x00par")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	rt = startProc(t, "hsgf-router[3]", routerBin, routerArgs...)
	base = "http://" + rt.addr
	routerWatermark(t, base, 9, 30*time.Second)
	mustIngest(t, base, 9, 10)

	// Acceptance oracle — feed the identical stream to the single
	// uninterrupted daemon, then every root's census through the router
	// (seed roots and the ten ingested ones) must match byte-for-byte.
	for k := 0; k < 10; k++ {
		resp, err := http.Post(oracleBase+"/v1/ingest", "application/json", strings.NewReader(fiBatchBody(k)))
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("oracle batch %d: %d %s", k, resp.StatusCode, body)
		}
	}
	total := fiNodes + 10
	got := censuses(t, base, total)
	want := censuses(t, oracleBase, total)
	for v := 0; v < total; v++ {
		if len(got[v]) != len(want[v]) {
			t.Fatalf("root %d: %d census keys via router vs %d oracle", v, len(got[v]), len(want[v]))
		}
		for key, count := range want[v] {
			if got[v][key] != count {
				t.Fatalf("root %d: census %q = %d via router, %d oracle", v, key, got[v][key], count)
			}
		}
	}
	t.Logf("census differential: %d roots byte-equal through two router crashes, a replica kill, a replay storm, and a torn sequencer tail", total)

	// Everything drains cleanly.
	shutdownProc(t, rt)
	for _, reps := range daemons {
		for _, p := range reps {
			shutdownProc(t, p)
		}
	}
	shutdownProc(t, oracle)
}
