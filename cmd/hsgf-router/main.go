// Command hsgf-router is the sharded, replicated serving tier: it fronts
// a fleet of hsgfd shard workers (cut by `hsgf -partition`) behind the
// same /v1/features API one hsgfd exposes, so clients cannot tell
// whether a router or a single daemon answered.
//
// Usage:
//
//	hsgf-router -manifest DIR/manifest.json \
//	    -shard 0=http://10.0.0.1:8080,http://10.0.0.2:8080 \
//	    -shard 1=http://10.0.1.1:8080,http://10.0.1.2:8080 \
//	    ... (one -shard per manifest shard) \
//	    [-addr :8090] [-probe-interval 500ms] [-fail-after 2] \
//	    [-retry-attempts 3] [-retry-base 50ms] [-retry-max 2s] \
//	    [-hedge-delay 30ms] [-hedge-max 2s] [-shard-timeout 15s] \
//	    [-breaker-window 20] [-breaker-ratio 0.5] [-breaker-cooldown 5s] \
//	    [-max-roots 512] [-drain-grace 10s]
//
// Endpoints:
//
//	POST /v1/features      scatter/gather a mixed-root batch across shards
//	GET  /v1/meta          fleet topology + per-replica health/generation
//	POST /v1/admin/reload  fleet-wide reload: verify every replica, then
//	                       flip shard-by-shard; aborts with nothing
//	                       flipped if any shard fails verification
//	GET  /healthz          liveness
//	GET  /readyz           ok / degraded (some shard down) / 503 (draining
//	                       or no shard reachable)
//	GET  /debug/stats      scatter, retry, hedge, breaker, reload counters
//
// Robustness: per-replica /readyz probing plus passive failure
// accounting, per-shard circuit breakers, bounded full-jitter retries
// that honour Retry-After, hedged requests after a p95-derived delay,
// and partial-result degradation — roots owned by an unreachable shard
// come back flagged shard-unavailable on a 200 instead of failing the
// batch. SIGTERM/SIGINT drains like hsgfd.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"hsgf/internal/core"
	"hsgf/internal/graph"
	"hsgf/internal/retry"
	"hsgf/internal/router"
	"hsgf/internal/serve"
)

// shardFlags collects repeated -shard IDX=url,url arguments.
type shardFlags map[int][]string

func (s shardFlags) String() string { return fmt.Sprintf("%d shards", len(s)) }

func (s shardFlags) Set(v string) error {
	idxStr, urls, ok := strings.Cut(v, "=")
	if !ok {
		return fmt.Errorf("want IDX=url[,url...], got %q", v)
	}
	idx, err := strconv.Atoi(idxStr)
	if err != nil || idx < 0 {
		return fmt.Errorf("bad shard index %q", idxStr)
	}
	if _, dup := s[idx]; dup {
		return fmt.Errorf("shard %d given twice", idx)
	}
	for _, u := range strings.Split(urls, ",") {
		u = strings.TrimSuffix(strings.TrimSpace(u), "/")
		if u == "" {
			return fmt.Errorf("shard %d has an empty replica URL", idx)
		}
		s[idx] = append(s[idx], u)
	}
	return nil
}

func main() {
	shards := shardFlags{}
	var (
		manifestPath = flag.String("manifest", "", "routing manifest written by hsgf -partition (required)")
		addr         = flag.String("addr", ":8090", "listen address")

		probeInterval = flag.Duration("probe-interval", 500*time.Millisecond, "replica /readyz probe period")
		probeTimeout  = flag.Duration("probe-timeout", time.Second, "per-probe timeout")
		failAfter     = flag.Int("fail-after", 2, "consecutive transport failures that mark a replica down")

		retryAttempts = flag.Int("retry-attempts", 3, "attempts per shard call (first try included)")
		retryBase     = flag.Duration("retry-base", 50*time.Millisecond, "base backoff before the first retry (full jitter)")
		retryMax      = flag.Duration("retry-max", 2*time.Second, "backoff growth cap")

		hedgeDelay   = flag.Duration("hedge-delay", 30*time.Millisecond, "hedge trigger until a p95 is known")
		hedgeMax     = flag.Duration("hedge-max", 2*time.Second, "cap on the p95-derived hedge trigger")
		shardTimeout = flag.Duration("shard-timeout", 15*time.Second, "per-attempt timeout against one shard")

		brkWindow   = flag.Int("breaker-window", 20, "shard-call outcomes in each shard breaker's sliding window")
		brkRatio    = flag.Float64("breaker-ratio", 0.5, "windowed failure ratio that opens a shard breaker")
		brkCooldown = flag.Duration("breaker-cooldown", 5*time.Second, "open time before half-open probes")

		maxRoots      = flag.Int("max-roots", 512, "max roots per batch")
		reloadTimeout = flag.Duration("reload-timeout", 2*time.Minute, "per-replica timeout within a fleet reload")
		drainGrace    = flag.Duration("drain-grace", 10*time.Second, "max wait for in-flight batches on shutdown")

		seqLogPath  = flag.String("seqlog", "", "sequencer WAL path; with -ingest-graph, enables fleet ingest on POST /v1/ingest")
		ingestGraph = flag.String("ingest-graph", "", "graph TSV the fleet was partitioned from (required with -seqlog)")
		ackTimeout  = flag.Duration("ingest-ack-timeout", 10*time.Second, "max wait for full-fleet confirmation before 503 fleet_partial_apply")
		maxSubMuts  = flag.Int("max-subbatch-mutations", 0, "per-shard sub-batch mutation cap after halo expansion (0 = followers' fleet default); must not exceed the followers' engine cap")
		maxSubBytes = flag.Int("max-subbatch-bytes", 0, "per-shard sub-batch body byte cap (0 = followers' fleet default); must not exceed the followers' request bound")
	)
	flag.Var(shards, "shard", "replica URLs for one shard, as IDX=url[,url...]; repeat per shard")
	flag.Parse()

	logger := log.New(os.Stderr, "hsgf-router: ", log.LstdFlags)
	if *manifestPath == "" {
		fmt.Fprintln(os.Stderr, "hsgf-router: -manifest is required")
		flag.Usage()
		os.Exit(2)
	}
	m, err := router.LoadManifest(*manifestPath)
	if err != nil {
		logger.Fatal(err)
	}
	replicaSets := make([][]string, m.NumShards)
	for idx, urls := range shards {
		if idx >= m.NumShards {
			logger.Fatalf("-shard %d out of range: manifest has %d shards", idx, m.NumShards)
		}
		replicaSets[idx] = urls
	}
	for idx, urls := range replicaSets {
		if len(urls) == 0 {
			logger.Fatalf("manifest shard %d has no -shard replica URLs", idx)
		}
	}

	if (*seqLogPath == "") != (*ingestGraph == "") {
		logger.Fatal("-seqlog and -ingest-graph must be set together")
	}
	var g *graph.Graph
	if *ingestGraph != "" {
		var err error
		g, err = core.ReadGraphFile(*ingestGraph)
		if err != nil {
			logger.Fatalf("-ingest-graph: %v", err)
		}
	}
	// Crash seam for the fault-injection suite: kill the process the
	// moment sequence N is durable, before any fan-out, to prove boot
	// replay repairs the gap. Never set in production.
	var seqHook func(uint64)
	if v := os.Getenv("HSGF_ROUTER_CRASH_AFTER_SEQ"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			logger.Fatalf("HSGF_ROUTER_CRASH_AFTER_SEQ: %v", err)
		}
		seqHook = func(seq uint64) {
			if seq >= n {
				logger.Printf("crash hook: exiting after sequencing %d", seq)
				os.Exit(137)
			}
		}
	}

	srv, err := router.New(router.Config{
		Manifest:      m,
		Shards:        replicaSets,
		ProbeInterval: *probeInterval,
		ProbeTimeout:  *probeTimeout,
		FailAfter:     int32(*failAfter),
		Retry: retry.Policy{
			MaxAttempts: *retryAttempts,
			BaseDelay:   *retryBase,
			MaxDelay:    *retryMax,
		},
		ShardTimeout:  *shardTimeout,
		HedgeDelay:    *hedgeDelay,
		HedgeMaxDelay: *hedgeMax,
		Breaker: serve.BreakerConfig{
			Window:    *brkWindow,
			TripRatio: *brkRatio,
			Cooldown:  *brkCooldown,
		},
		MaxRootsPerRequest:   *maxRoots,
		ReloadTimeout:        *reloadTimeout,
		DrainGrace:           *drainGrace,
		SeqLogPath:           *seqLogPath,
		IngestGraph:          g,
		IngestAckTimeout:     *ackTimeout,
		MaxSubBatchMutations: *maxSubMuts,
		MaxSubBatchBytes:     *maxSubBytes,
		SequenceHook:         seqHook,
		Log:                  logger,
	})
	if err != nil {
		logger.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, syscall.SIGINT)
	defer stop()
	if err := srv.ListenAndServe(ctx, *addr); err != nil {
		logger.Fatal(err)
	}
}
