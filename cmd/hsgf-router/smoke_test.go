//go:build smoke

// Multi-process smoke test for the routing tier: partitions a synthetic
// graph into 4 shards, boots 8 real hsgfd shard workers (2 replicas per
// shard) plus the real hsgf-router binary — all built under the race
// detector — and exercises the distributed failure modes end to end:
//
//   - scatter/gather over concurrent mixed-root traffic,
//   - a fleet-wide zero-downtime reload while traffic is running
//     (every request during the flip must succeed, every replica must
//     land on the new generation),
//   - SIGKILL of one replica mid-load: zero 5xx, zero degraded rows
//     (the surviving replica absorbs the shard),
//   - SIGKILL of the shard's second replica: batches still answer 200
//     with that shard's roots flagged shard-unavailable and every other
//     shard's rows exact,
//   - graceful SIGTERM drain of router and surviving daemons.
//
// Gated behind the "smoke" build tag; run with `make router-smoke`.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"hsgf"
	"hsgf/internal/graph"
	"hsgf/internal/router"
)

const (
	smokeShards   = 4
	smokeReplicas = 2
	smokeNodes    = 600
	smokeEmax     = 3
)

// buildSmokeGraph returns a connected labelled graph with hubs and
// periphery.
func buildSmokeGraph(t *testing.T) *graph.Graph {
	t.Helper()
	return buildSmokeGraphN(t, smokeNodes, 41)
}

// buildSmokeGraphN builds the same shape at any size and seed.
func buildSmokeGraphN(t *testing.T, n int, seed int64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilderWithAlphabet(graph.MustAlphabet("loc", "org", "act"))
	for i := 0; i < n; i++ {
		if _, err := b.AddLabeledNode(graph.Label(rng.Intn(3))); err != nil {
			t.Fatal(err)
		}
	}
	for v := 1; v < n; v++ {
		if err := b.AddEdge(graph.NodeID(rng.Intn(v)), graph.NodeID(v)); err != nil {
			t.Fatal(err)
		}
		u := rng.Intn(n)
		if u != v {
			if err := b.AddEdge(graph.NodeID(v), graph.NodeID(u)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return b.MustBuild()
}

// shutdownProc SIGTERMs p and requires a clean exit 0 within the drain
// window.
func shutdownProc(t *testing.T, p *proc) {
	t.Helper()
	if err := p.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatalf("%s: SIGTERM: %v", p.name, err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- p.cmd.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("%s exited non-zero after SIGTERM: %v\n%s", p.name, err, p.log())
		}
	case <-time.After(15 * time.Second):
		t.Fatalf("%s did not exit within the drain window", p.name)
	}
}

// writeShardFleet partitions g and writes per-shard stores plus the
// routing manifest under dir — the same library path `hsgf -partition`
// drives.
func writeShardFleet(t *testing.T, g *graph.Graph, dir string) (manifestPath string, storeDirs []string) {
	t.Helper()
	plans, err := graph.PartitionByRoot(g, graph.PartitionConfig{NumShards: smokeShards, HaloDepth: smokeEmax})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range plans {
		sd := filepath.Join(dir, fmt.Sprintf("shard-%03d", p.Shard))
		st, err := hsgf.OpenStore(sd, hsgf.StoreOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := hsgf.SaveGraphSnapshot(st, p.Graph); err != nil {
			t.Fatal(err)
		}
		storeDirs = append(storeDirs, sd)
	}
	m := router.BuildManifest(g.NumNodes(), smokeEmax, plans)
	manifestPath = filepath.Join(dir, "manifest.json")
	if err := router.WriteManifest(manifestPath, m); err != nil {
		t.Fatal(err)
	}
	return manifestPath, storeDirs
}

// proc is one child process with its scraped listen address and log tail.
type proc struct {
	name string
	cmd  *exec.Cmd
	addr string

	logMu   sync.Mutex
	logTail bytes.Buffer
}

func (p *proc) log() string {
	p.logMu.Lock()
	defer p.logMu.Unlock()
	return p.logTail.String()
}

// startProc launches bin, scrapes "listening on <addr>" from stderr and
// keeps draining the pipe.
func startProc(t *testing.T, name, bin string, args ...string) *proc {
	t.Helper()
	return startProcEnv(t, name, bin, nil, args...)
}

// startProcEnv is startProc with extra environment variables appended
// to the inherited environment.
func startProcEnv(t *testing.T, name, bin string, env []string, args ...string) *proc {
	t.Helper()
	p := &proc{name: name, cmd: exec.Command(bin, args...)}
	if len(env) > 0 {
		p.cmd.Env = append(os.Environ(), env...)
	}
	stderr, err := p.cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := p.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if p.cmd.Process != nil {
			_ = p.cmd.Process.Kill()
			_, _ = p.cmd.Process.Wait()
		}
	})
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			p.logMu.Lock()
			fmt.Fprintln(&p.logTail, line)
			p.logMu.Unlock()
			if i := strings.Index(line, "listening on "); i >= 0 {
				addr := strings.Fields(line[i+len("listening on "):])[0]
				select {
				case addrCh <- addr:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		p.addr = addr
	case <-time.After(30 * time.Second):
		t.Fatalf("%s never reported its listen address:\n%s", name, p.log())
	}
	return p
}

func TestRouterSmoke(t *testing.T) {
	tmp := t.TempDir()
	g := buildSmokeGraph(t)
	manifestPath, storeDirs := writeShardFleet(t, g, tmp)

	// Build both real binaries under the race detector.
	hsgfdBin := filepath.Join(tmp, "hsgfd")
	routerBin := filepath.Join(tmp, "hsgf-router")
	for bin, dir := range map[string]string{hsgfdBin: "../hsgfd", routerBin: "."} {
		build := exec.Command("go", "build", "-race", "-o", bin, dir)
		if out, err := build.CombinedOutput(); err != nil {
			t.Fatalf("go build -race %s: %v\n%s", dir, err, out)
		}
	}

	// Boot 4 shards x 2 replicas, every replica a real hsgfd serving its
	// shard's store.
	daemons := make([][]*proc, smokeShards)
	var shardFlags []string
	for si := 0; si < smokeShards; si++ {
		var urls []string
		for ri := 0; ri < smokeReplicas; ri++ {
			p := startProc(t, fmt.Sprintf("hsgfd[%d/%d]", si, ri), hsgfdBin,
				"-store", storeDirs[si],
				"-addr", "127.0.0.1:0",
				"-emax", fmt.Sprint(smokeEmax),
				"-max-inflight", "4",
				"-drain-grace", "10s",
			)
			daemons[si] = append(daemons[si], p)
			urls = append(urls, "http://"+p.addr)
		}
		shardFlags = append(shardFlags, "-shard", fmt.Sprintf("%d=%s", si, strings.Join(urls, ",")))
	}

	args := append([]string{
		"-manifest", manifestPath,
		"-addr", "127.0.0.1:0",
		"-probe-interval", "100ms",
		"-fail-after", "1",
		"-retry-attempts", "3",
		"-retry-base", "20ms",
		"-hedge-delay", "40ms",
		"-drain-grace", "10s",
	}, shardFlags...)
	rt := startProc(t, "hsgf-router", routerBin, args...)
	base := "http://" + rt.addr

	get := func(path string) (int, []byte) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, body
	}

	if code, body := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz = %d: %s", code, body)
	}
	if code, body := get("/readyz"); code != http.StatusOK {
		t.Fatalf("readyz = %d: %s", code, body)
	}
	code, body := get("/v1/meta")
	if code != http.StatusOK {
		t.Fatalf("meta = %d: %s", code, body)
	}
	var meta struct {
		NumShards int `json:"num_shards"`
		NumNodes  int `json:"num_nodes"`
	}
	if err := json.Unmarshal(body, &meta); err != nil || meta.NumShards != smokeShards || meta.NumNodes != smokeNodes {
		t.Fatalf("meta body %s (err %v)", body, err)
	}

	// batch posts one mixed-root request and returns status, rows.
	type row struct {
		Root  int64  `json:"root"`
		Flags string `json:"flags"`
	}
	type featResp struct {
		Rows     []row `json:"rows"`
		Degraded bool  `json:"degraded"`
	}
	rng := rand.New(rand.NewSource(97))
	randomRoots := func(n int) []int64 {
		roots := make([]int64, n)
		for i := range roots {
			roots[i] = int64(rng.Intn(smokeNodes))
		}
		return roots
	}
	postBatch := func(roots []int64) (int, featResp, error) {
		b, _ := json.Marshal(map[string]any{"roots": roots})
		resp, err := http.Post(base+"/v1/features", "application/json", bytes.NewReader(b))
		if err != nil {
			return 0, featResp{}, err
		}
		defer resp.Body.Close()
		var fr featResp
		data, _ := io.ReadAll(resp.Body)
		if resp.StatusCode == http.StatusOK {
			if err := json.Unmarshal(data, &fr); err != nil {
				return resp.StatusCode, fr, fmt.Errorf("undecodable body %q: %w", data, err)
			}
		}
		return resp.StatusCode, fr, nil
	}

	// Phase 0: healthy-fleet traffic. Every batch 200, no degradation,
	// rows in request order.
	roots := randomRoots(60)
	code, fr, err := postBatch(roots)
	if err != nil || code != http.StatusOK {
		t.Fatalf("healthy batch: code %d err %v", code, err)
	}
	if fr.Degraded || len(fr.Rows) != len(roots) {
		t.Fatalf("healthy batch degraded=%v rows=%d", fr.Degraded, len(fr.Rows))
	}
	for i, r := range fr.Rows {
		if r.Root != roots[i] {
			t.Fatalf("row %d root %d, want %d: scatter/gather lost request order", i, r.Root, roots[i])
		}
		if r.Flags != "ok" {
			t.Fatalf("healthy row %d flagged %q", i, r.Flags)
		}
	}

	// trafficPhase runs mixed-root batches from W workers until stop is
	// closed, recording hard failures (transport errors, 5xx) and
	// degraded rows.
	trafficPhase := func(workers int, stop <-chan struct{}) (requests, hardFailures, degradedRows *atomic.Int64, done *sync.WaitGroup) {
		requests, hardFailures, degradedRows = new(atomic.Int64), new(atomic.Int64), new(atomic.Int64)
		done = new(sync.WaitGroup)
		for w := 0; w < workers; w++ {
			done.Add(1)
			seed := int64(1000 + w)
			go func() {
				defer done.Done()
				wrng := rand.New(rand.NewSource(seed))
				for {
					select {
					case <-stop:
						return
					default:
					}
					roots := make([]int64, 20)
					for i := range roots {
						roots[i] = int64(wrng.Intn(smokeNodes))
					}
					code, fr, err := postBatch(roots)
					requests.Add(1)
					if err != nil || code >= 500 {
						hardFailures.Add(1)
						continue
					}
					for _, r := range fr.Rows {
						if r.Flags != "ok" {
							degradedRows.Add(1)
						}
					}
				}
			}()
		}
		return requests, hardFailures, degradedRows, done
	}

	// Phase 1: fleet-wide zero-downtime reload under load. Write
	// generation 2 into every shard store first, then flip the fleet.
	plans, err := graph.PartitionByRoot(g, graph.PartitionConfig{NumShards: smokeShards, HaloDepth: smokeEmax})
	if err != nil {
		t.Fatal(err)
	}
	for si, sd := range storeDirs {
		st, err := hsgf.OpenStore(sd, hsgf.StoreOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := hsgf.SaveGraphSnapshot(st, plans[si].Graph); err != nil {
			t.Fatal(err)
		}
	}
	stop1 := make(chan struct{})
	req1, hard1, deg1, wg1 := trafficPhase(4, stop1)
	time.Sleep(300 * time.Millisecond) // traffic in flight before the flip

	resp, err := http.Post(base+"/v1/admin/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	reloadBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fleet reload = %d: %s", resp.StatusCode, reloadBody)
	}
	var reload struct {
		Outcome string `json:"outcome"`
		Shards  []struct {
			Replicas []struct {
				Flipped    bool   `json:"flipped"`
				Generation uint64 `json:"generation"`
			} `json:"replicas"`
		} `json:"shards"`
	}
	if err := json.Unmarshal(reloadBody, &reload); err != nil || reload.Outcome != "ok" {
		t.Fatalf("fleet reload outcome %q (err %v): %s", reload.Outcome, err, reloadBody)
	}
	for si, sh := range reload.Shards {
		for ri, rep := range sh.Replicas {
			if !rep.Flipped || rep.Generation != 2 {
				t.Fatalf("shard %d replica %d: flipped=%v generation=%d, want generation 2 everywhere", si, ri, rep.Flipped, rep.Generation)
			}
		}
	}
	time.Sleep(300 * time.Millisecond) // traffic across the post-flip fleet
	close(stop1)
	wg1.Wait()
	if req1.Load() == 0 {
		t.Fatal("no traffic ran during the fleet reload")
	}
	if hard1.Load() != 0 || deg1.Load() != 0 {
		t.Fatalf("fleet reload dropped requests: %d hard failures, %d degraded rows over %d requests",
			hard1.Load(), deg1.Load(), req1.Load())
	}
	t.Logf("fleet reload: %d requests during flip, zero failures", req1.Load())

	// Phase 2: SIGKILL one replica of shard 2 mid-load. The surviving
	// replica absorbs everything: zero hard failures, zero degraded rows.
	const victimShard = 2
	stop2 := make(chan struct{})
	req2, hard2, deg2, wg2 := trafficPhase(4, stop2)
	time.Sleep(200 * time.Millisecond)
	if err := daemons[victimShard][0].cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_, _ = daemons[victimShard][0].cmd.Process.Wait()
	time.Sleep(1500 * time.Millisecond) // traffic through failover + probe detection
	close(stop2)
	wg2.Wait()
	if hard2.Load() != 0 {
		t.Fatalf("replica SIGKILL caused %d hard failures over %d requests (failover must absorb it)",
			hard2.Load(), req2.Load())
	}
	if deg2.Load() != 0 {
		t.Fatalf("replica SIGKILL degraded %d rows over %d requests despite a healthy replica", deg2.Load(), req2.Load())
	}
	t.Logf("replica kill: %d requests, zero failures, zero degraded rows", req2.Load())

	// Phase 3: SIGKILL the shard's second replica — the shard is gone.
	// Batches still answer 200; only the dead shard's roots degrade.
	if err := daemons[victimShard][1].cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_, _ = daemons[victimShard][1].cmd.Process.Wait()
	time.Sleep(500 * time.Millisecond) // probes notice

	deadRows, okRows := 0, 0
	for round := 0; round < 5; round++ {
		roots := randomRoots(40)
		code, fr, err := postBatch(roots)
		if err != nil || code != http.StatusOK {
			t.Fatalf("round %d with a dead shard: code %d err %v (batches must degrade, not fail)", round, code, err)
		}
		for i, r := range fr.Rows {
			if r.Root != roots[i] {
				t.Fatalf("row order lost under degradation: row %d root %d want %d", i, r.Root, roots[i])
			}
			if graph.RootShard(graph.NodeID(r.Root), smokeShards) == victimShard {
				deadRows++
				if r.Flags != "shard-unavailable" {
					t.Fatalf("dead-shard root %d flagged %q, want shard-unavailable", r.Root, r.Flags)
				}
			} else {
				okRows++
				if r.Flags != "ok" {
					t.Fatalf("healthy-shard root %d flagged %q while another shard is down", r.Root, r.Flags)
				}
			}
		}
	}
	if deadRows == 0 || okRows == 0 {
		t.Fatalf("degenerate phase-3 sample: %d dead rows, %d ok rows", deadRows, okRows)
	}
	if code, body := get("/readyz"); code != http.StatusOK || !strings.Contains(string(body), "degraded") {
		t.Fatalf("readyz with one dead shard = %d %s, want 200 degraded", code, body)
	}

	// Stats must reflect the life the router just lived.
	code, body = get("/debug/stats")
	if code != http.StatusOK {
		t.Fatalf("stats = %d", code)
	}
	var stats struct {
		Requests        int64 `json:"requests"`
		UnavailableRows int64 `json:"unavailable_rows"`
		Retries         int64 `json:"retries"`
		Hedges          int64 `json:"hedges"`
		Failovers       int64 `json:"failovers"`
		FleetReloadOK   int64 `json:"fleet_reload_ok"`
	}
	if err := json.Unmarshal(body, &stats); err != nil {
		t.Fatalf("stats body %s (err %v)", body, err)
	}
	if stats.UnavailableRows == 0 || stats.FleetReloadOK != 1 {
		t.Fatalf("stats inconsistent with the run: %+v", stats)
	}
	if stats.Retries+stats.Hedges+stats.Failovers == 0 {
		t.Fatalf("no retries/hedges/failovers recorded across two replica kills: %+v", stats)
	}

	// Graceful drain: router first, then the surviving daemons; all exit 0.
	shutdownProc(t, rt)
	if !strings.Contains(rt.log(), "drained cleanly") {
		t.Errorf("router log missing clean-drain marker:\n%s", rt.log())
	}
	for si, reps := range daemons {
		if si == victimShard {
			continue // already SIGKILLed
		}
		for _, p := range reps {
			shutdownProc(t, p)
		}
	}
}
