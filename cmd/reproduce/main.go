// Command reproduce runs the entire evaluation of the paper end to end
// at a chosen scale and writes every artifact to one report: the §3.1
// encoding audit, Figure 3 / Table 1 / Figure 4 (rank prediction),
// Figure 5 A-F (label prediction), Table 2 (dmax), Table 3 (runtime),
// the §3.1 emax ablation, and the §5 directed-features experiment.
//
//	reproduce                   # laptop scale, ~30-60 min, stdout
//	reproduce -quick            # reduced protocol, minutes
//	reproduce -out report.txt   # write the report to a file
//
// Every run is deterministic under -seed.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"hsgf/internal/embed"
	"hsgf/internal/experiments"
	"hsgf/internal/iso"
)

func main() {
	var (
		quick = flag.Bool("quick", false, "reduced protocol (minutes instead of an hour)")
		scale = flag.Float64("scale", 0.2, "label-prediction network scale in (0,1]")
		seed  = flag.Int64("seed", 42, "experiment seed")
		out   = flag.String("out", "", "report path (default: stdout)")
	)
	flag.Parse()

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fail(err)
		}
		defer f.Close()
		w = f
	}
	start := time.Now()
	fmt.Fprintf(w, "hsgf full reproduction — seed %d, scale %.2f, quick=%v\n\n", *seed, *scale, *quick)

	// §3.1 — encoding uniqueness bounds.
	step(w, "E8: §3.1 encoding uniqueness audit")
	loopy, _ := iso.MaxUniqueEdges(5, 1, false)
	loopFree, _ := iso.MaxUniqueEdges(5, 2, true)
	fmt.Fprintf(w, "unique through emax = %d with same-label edges (paper: 4)\n", loopy)
	fmt.Fprintf(w, "unique through emax = %d loop-free (paper: 5)\n\n", loopFree)

	// Rank prediction.
	step(w, "E1-E3: rank prediction (Figure 3, Table 1, Figure 4)")
	rcfg := experiments.DefaultRankConfig()
	rcfg.Seed = *seed
	rcfg.Publication.Seed = *seed
	if *quick {
		rcfg.Publication.Institutions = 40
		rcfg.Publication.PapersPerConfYear = 20
		rcfg.Publication.ExternalPapers = 300
		rcfg.MaxEdges = 4
		rcfg.ForestTrees = 60
		rcfg.Walks = embed.WalkConfig{WalksPerNode: 3, WalkLength: 12, ReturnP: 1, InOutQ: 1}
		rcfg.SGNS = embed.SGNSConfig{Dim: 16, Window: 4, Negatives: 3, Epochs: 1}
		rcfg.EmbedDim = 16
		rcfg.LINESamplesX = 8
	}
	rres, err := experiments.RunRank(rcfg)
	if err != nil {
		fail(err)
	}
	experiments.WriteFigure3(w, rres)
	experiments.WriteTable1(w, rres)
	experiments.WriteFigure4(w, rres)

	// Label prediction.
	step(w, "E4, E6, E7: label prediction (Figure 5, Table 2)")
	lcfg := experiments.DefaultLabelConfig()
	lcfg.Seed = *seed
	if *quick {
		lcfg.PerLabel = 40
		lcfg.Repeats = 5
		lcfg.TrainFracs = []float64{0.1, 0.5, 0.9}
		lcfg.Removals = []float64{0, 0.25, 0.5, 0.75}
		lcfg.DmaxLevels = []float64{0.90, 0.94, 0.98}
	}
	datasets, err := experiments.LoadLabelDatasets(*scale, *seed)
	if err != nil {
		fail(err)
	}
	dmaxRows := map[string][]experiments.CurvePoint{}
	var order []string
	var runtimeRows []*experiments.RuntimeRow
	for _, ds := range datasets {
		order = append(order, ds.Name)
		curves, err := experiments.TrainingSizeCurves(ds.Graph, lcfg)
		if err != nil {
			fail(err)
		}
		experiments.WriteCurves(w, fmt.Sprintf("Figure 5 (%s) — Macro F1 vs training size", ds.Name), "train", curves)
		removal, err := experiments.LabelRemovalCurves(ds.Graph, lcfg)
		if err != nil {
			fail(err)
		}
		experiments.WriteCurves(w, fmt.Sprintf("Figure 5 (%s) — Macro F1 vs removed labels", ds.Name), "removed", removal)

		dcfg := lcfg
		if ds.Name != "IMDB" {
			var capped []float64
			for _, l := range lcfg.DmaxLevels {
				if l < 1 {
					capped = append(capped, l)
				}
			}
			dcfg.DmaxLevels = capped
		}
		pts, err := experiments.DmaxSweep(ds.Graph, dcfg)
		if err != nil {
			fail(err)
		}
		dmaxRows[ds.Name] = pts

		row, err := experiments.MeasureRuntime(ds.Name, ds.Graph, lcfg)
		if err != nil {
			fail(err)
		}
		runtimeRows = append(runtimeRows, row)
	}
	experiments.WriteTable2(w, dmaxRows, order)
	step(w, "E5: runtime (Table 3)")
	experiments.WriteTable3(w, runtimeRows)

	// Directed extension.
	step(w, "E10: §5 conjecture — directed vs undirected features")
	dcfg := experiments.DefaultDirectedConfig()
	dcfg.Seed = *seed
	if *quick {
		dcfg.Citation.Papers = 400
		dcfg.PerRole = 40
		dcfg.Repeats = 5
	}
	dres, err := experiments.RunDirected(dcfg)
	if err != nil {
		fail(err)
	}
	fmt.Fprintf(w, "directed (typed):  Macro F1 %.2f±%.2f\n", dres.DirectedF1, dres.DirectedCI)
	fmt.Fprintf(w, "undirected:        Macro F1 %.2f±%.2f\n\n", dres.UndirectedF1, dres.UndirectedCI)

	fmt.Fprintf(w, "total: %v\n", time.Since(start).Round(time.Second))
	fmt.Fprintln(os.Stderr, "reproduce: done in", time.Since(start).Round(time.Second))
}

func step(w io.Writer, title string) {
	fmt.Fprintf(w, "================ %s ================\n\n", title)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "reproduce:", err)
	os.Exit(1)
}
