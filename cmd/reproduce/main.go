// Command reproduce runs the entire evaluation of the paper end to end
// at a chosen scale and writes every artifact to one report: the §3.1
// encoding audit, Figure 3 / Table 1 / Figure 4 (rank prediction),
// Figure 5 A-F (label prediction), Table 2 (dmax), Table 3 (runtime),
// the §3.1 emax ablation, and the §5 directed-features experiment.
//
//	reproduce                   # laptop scale, ~30-60 min, stdout
//	reproduce -quick            # reduced protocol, minutes
//	reproduce -out report.txt   # write the report to a file
//
// The run is resilient: every stage executes under panic isolation and
// is retried with exponential backoff; a stage that keeps failing is
// skipped with an explicit gap marker in the report instead of aborting
// the reproduction, and the closing stage summary lists every outcome.
// With -checkpoint DIR each completed stage's rendered section is
// persisted, and a later run with -checkpoint DIR -resume splices those
// sections instead of recomputing them — so a run killed after the rank
// stage resumes with the rank stage already done.
//
// Exit status: 0 on a complete report, 1 on fatal errors (unwritable
// report, bad flags), 3 when the report was written but one or more
// stages were skipped.
//
// Every run is deterministic under -seed when -embed-workers=1; at
// higher worker counts the walk corpora stay deterministic but Hogwild
// embedding training trades bitwise reproducibility for multicore speed
// (see DESIGN.md §10).
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"hsgf/internal/embed"
	"hsgf/internal/experiments"
	"hsgf/internal/iso"
	"hsgf/internal/store"
)

func main() {
	var (
		quick    = flag.Bool("quick", false, "reduced protocol (minutes instead of an hour)")
		scale    = flag.Float64("scale", 0.2, "label-prediction network scale in (0,1]")
		seed     = flag.Int64("seed", 42, "experiment seed")
		out      = flag.String("out", "", "report path (default: stdout)")
		ckpt     = flag.String("checkpoint", "", "directory for per-stage checkpoints")
		resume   = flag.Bool("resume", false, "splice completed stages from the checkpoint directory")
		storeDir = flag.String("store", "", "also persist the finished report into this artifact store as a checksummed snapshot")
		attempts = flag.Int("attempts", 2, "attempts per stage before it is skipped")
		backoff  = flag.Duration("backoff", 2*time.Second, "backoff before the first stage retry (doubles per retry)")
		embedW   = flag.Int("embed-workers", runtime.GOMAXPROCS(0),
			"parallel workers for embedding training (1 = exact serial, bitwise-deterministic)")
	)
	flag.Parse()
	if *resume && *ckpt == "" {
		fail(fmt.Errorf("-resume requires -checkpoint"))
	}

	w := io.Writer(os.Stdout)
	var f *os.File
	if *out != "" {
		var err error
		f, err = os.Create(*out)
		if err != nil {
			fail(err)
		}
		w = f
	}
	// With -store the report is teed into a buffer and persisted as the
	// next checksummed "report" generation once the pipeline finishes —
	// a crash mid-run never leaves a torn snapshot behind.
	var reportBuf *bytes.Buffer
	if *storeDir != "" {
		reportBuf = &bytes.Buffer{}
		w = io.MultiWriter(w, reportBuf)
	}
	// Ctrl-C / SIGTERM cancels long embedding loops; the stage runner then
	// records the interrupted stage as skipped rather than hanging.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	fmt.Fprintf(w, "hsgf full reproduction — seed %d, scale %.2f, quick=%v\n\n", *seed, *scale, *quick)

	var sections *experiments.SectionStore
	if *ckpt != "" {
		sections = &experiments.SectionStore{Dir: *ckpt, Resume: *resume}
	}
	runner := &experiments.StageRunner{
		MaxAttempts: *attempts,
		Backoff:     *backoff,
		Log:         os.Stderr,
	}

	ok := experiments.RunPipeline(w, buildStages(ctx, *quick, *scale, *seed, *embedW), runner, sections)
	fmt.Fprintf(w, "\ntotal: %v\n", time.Since(start).Round(time.Second))
	fmt.Fprintln(os.Stderr, "reproduce: done in", time.Since(start).Round(time.Second))

	// A truncated report must never pass for a successful one: surface
	// flush/sync/close failures instead of swallowing them in a defer.
	// Unsyncable sinks (/dev/null, pipes) report EINVAL/ENOTSUP and are
	// fine.
	if f != nil {
		if err := f.Sync(); err != nil && !errors.Is(err, syscall.EINVAL) && !errors.Is(err, syscall.ENOTSUP) {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
	}
	if reportBuf != nil {
		st, err := store.Open(*storeDir, store.Options{})
		if err != nil {
			fail(err)
		}
		gen, err := st.Write("report", []store.Section{{Name: "report", Payload: reportBuf.Bytes()}})
		if err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "reproduce: stored report generation %d in %s\n", gen, *storeDir)
	}
	if !ok {
		fmt.Fprintln(os.Stderr, "reproduce: report contains skipped stages (exit 3)")
		os.Exit(3)
	}
}

// buildStages assembles the reproduction pipeline. Each stage renders a
// self-contained report section, so a resumed run can splice the saved
// text verbatim. The label datasets are generated lazily and shared:
// generation failures surface in (and are retried by) whichever
// dependent stage runs first, without touching independent stages.
func buildStages(ctx context.Context, quick bool, scale float64, seed int64, embedWorkers int) []experiments.Stage {
	var (
		datasets    []experiments.LabelDataset
		datasetsErr error
		loaded      bool
	)
	getDatasets := func() ([]experiments.LabelDataset, error) {
		if !loaded {
			datasets, datasetsErr = experiments.LoadLabelDatasets(scale, seed)
			loaded = datasetsErr == nil // a failed generation is retried next call
		}
		return datasets, datasetsErr
	}

	lcfg := experiments.DefaultLabelConfig()
	lcfg.Seed = seed
	lcfg.EmbedWorkers = embedWorkers
	if quick {
		lcfg.PerLabel = 40
		lcfg.Repeats = 5
		lcfg.TrainFracs = []float64{0.1, 0.5, 0.9}
		lcfg.Removals = []float64{0, 0.25, 0.5, 0.75}
		lcfg.DmaxLevels = []float64{0.90, 0.94, 0.98}
	}

	stages := []experiments.Stage{
		{Name: "audit", Fn: func(w io.Writer) error {
			step(w, "E8: §3.1 encoding uniqueness audit")
			loopy, _ := iso.MaxUniqueEdges(5, 1, false)
			loopFree, _ := iso.MaxUniqueEdges(5, 2, true)
			fmt.Fprintf(w, "unique through emax = %d with same-label edges (paper: 4)\n", loopy)
			fmt.Fprintf(w, "unique through emax = %d loop-free (paper: 5)\n\n", loopFree)
			return nil
		}},
		{Name: "rank", Fn: func(w io.Writer) error {
			step(w, "E1-E3: rank prediction (Figure 3, Table 1, Figure 4)")
			rcfg := experiments.DefaultRankConfig()
			rcfg.Seed = seed
			rcfg.Publication.Seed = seed
			rcfg.EmbedWorkers = embedWorkers
			if quick {
				rcfg.Publication.Institutions = 40
				rcfg.Publication.PapersPerConfYear = 20
				rcfg.Publication.ExternalPapers = 300
				rcfg.MaxEdges = 4
				rcfg.ForestTrees = 60
				rcfg.Walks = embed.WalkConfig{WalksPerNode: 3, WalkLength: 12, ReturnP: 1, InOutQ: 1}
				rcfg.SGNS = embed.SGNSConfig{Dim: 16, Window: 4, Negatives: 3, Epochs: 1}
				rcfg.EmbedDim = 16
				rcfg.LINESamplesX = 8
			}
			rres, err := experiments.RunRank(ctx, rcfg)
			if err != nil {
				return err
			}
			experiments.WriteFigure3(w, rres)
			experiments.WriteTable1(w, rres)
			experiments.WriteFigure4(w, rres)
			return nil
		}},
	}

	for _, name := range []string{"LOAD", "IMDB", "MAG"} {
		name := name
		stages = append(stages, experiments.Stage{
			Name: "label-" + name,
			Fn: func(w io.Writer) error {
				ds, err := findDataset(getDatasets, name)
				if err != nil {
					return err
				}
				step(w, fmt.Sprintf("E4, E7: label prediction on %s (Figure 5)", name))
				curves, err := experiments.TrainingSizeCurves(ctx, ds.Graph, lcfg)
				if err != nil {
					return err
				}
				experiments.WriteCurves(w, fmt.Sprintf("Figure 5 (%s) — Macro F1 vs training size", name), "train", curves)
				removal, err := experiments.LabelRemovalCurves(ctx, ds.Graph, lcfg)
				if err != nil {
					return err
				}
				experiments.WriteCurves(w, fmt.Sprintf("Figure 5 (%s) — Macro F1 vs removed labels", name), "removed", removal)
				return nil
			},
		})
	}

	stages = append(stages,
		experiments.Stage{Name: "dmax", Fn: func(w io.Writer) error {
			datasets, err := getDatasets()
			if err != nil {
				return err
			}
			step(w, "E6: dmax sensitivity (Table 2)")
			dmaxRows := map[string][]experiments.CurvePoint{}
			var order []string
			for _, ds := range datasets {
				order = append(order, ds.Name)
				dcfg := lcfg
				if ds.Name != "IMDB" {
					// The unlimited level does not finish on the dense
					// networks (the paper skips it there too).
					var capped []float64
					for _, l := range lcfg.DmaxLevels {
						if l < 1 {
							capped = append(capped, l)
						}
					}
					dcfg.DmaxLevels = capped
				}
				pts, err := experiments.DmaxSweep(ds.Graph, dcfg)
				if err != nil {
					return err
				}
				dmaxRows[ds.Name] = pts
			}
			experiments.WriteTable2(w, dmaxRows, order)
			return nil
		}},
		experiments.Stage{Name: "runtime", Fn: func(w io.Writer) error {
			datasets, err := getDatasets()
			if err != nil {
				return err
			}
			step(w, "E5: runtime (Table 3)")
			var rows []*experiments.RuntimeRow
			for _, ds := range datasets {
				row, err := experiments.MeasureRuntime(ctx, ds.Name, ds.Graph, lcfg)
				if err != nil {
					return err
				}
				rows = append(rows, row)
			}
			experiments.WriteTable3(w, rows)
			return nil
		}},
		experiments.Stage{Name: "directed", Fn: func(w io.Writer) error {
			step(w, "E10: §5 conjecture — directed vs undirected features")
			dcfg := experiments.DefaultDirectedConfig()
			dcfg.Seed = seed
			if quick {
				dcfg.Citation.Papers = 400
				dcfg.PerRole = 40
				dcfg.Repeats = 5
			}
			dres, err := experiments.RunDirected(dcfg)
			if err != nil {
				return err
			}
			fmt.Fprintf(w, "directed (typed):  Macro F1 %.2f±%.2f\n", dres.DirectedF1, dres.DirectedCI)
			fmt.Fprintf(w, "undirected:        Macro F1 %.2f±%.2f\n\n", dres.UndirectedF1, dres.UndirectedCI)
			return nil
		}},
	)
	return stages
}

func findDataset(get func() ([]experiments.LabelDataset, error), name string) (experiments.LabelDataset, error) {
	datasets, err := get()
	if err != nil {
		return experiments.LabelDataset{}, err
	}
	for _, ds := range datasets {
		if ds.Name == name {
			return ds, nil
		}
	}
	return experiments.LabelDataset{}, fmt.Errorf("dataset %q not generated", name)
}

func step(w io.Writer, title string) {
	fmt.Fprintf(w, "================ %s ================\n\n", title)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "reproduce:", err)
	os.Exit(1)
}
