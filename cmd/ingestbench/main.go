// Command ingestbench runs the tracked streaming-ingest benchmark: it
// boots a WAL-backed ingest engine over the synthetic publication
// network, drives a deterministic stream of mutation batches through
// the full durable path — validate, WAL fsync, incremental dirty-ball
// recompute, publish — and writes the results as JSON
// (BENCH_ingest.json under `make bench`).
//
// The tracked numbers are mutations/sec and batches/sec of sustained
// durable throughput, the ingest-to-serve latency distribution (p50/p99
// from Apply entry to published state — what a client waits between ack
// and readable freshness), the dirty-set sizes that make incremental
// maintenance pay, and the measured speedup of a dirty-ball recompute
// over a from-scratch CensusAll of the whole graph.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"hsgf/internal/core"
	"hsgf/internal/datagen"
	"hsgf/internal/graph"
	"hsgf/internal/ingest"
	"hsgf/internal/router"
	"hsgf/internal/serve"
	"hsgf/internal/store"
)

type report struct {
	Generated  string `json:"generated"`
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	GoMaxProcs int    `json:"gomaxprocs"`
	Nodes      int    `json:"graph_nodes"`
	Edges      int    `json:"graph_edges"`
	MaxEdges   int    `json:"emax"`

	Batches         int     `json:"batches"`
	Mutations       int     `json:"mutations"`
	BatchesPerSec   float64 `json:"batches_per_sec"`
	MutationsPerSec float64 `json:"mutations_per_sec"`

	// Ingest-to-serve: Apply entry to published (serving) state,
	// including the WAL fsync and the incremental recompute.
	IngestToServeP50MS float64 `json:"ingest_to_serve_p50_ms"`
	IngestToServeP99MS float64 `json:"ingest_to_serve_p99_ms"`

	MeanDirtyRoots float64 `json:"mean_dirty_roots"`
	MaxDirtyRoots  int     `json:"max_dirty_roots"`
	// MeanDirtyFrac is mean dirty roots over graph size — the fraction of
	// census work a full rebuild would waste per batch.
	MeanDirtyFrac float64 `json:"mean_dirty_frac"`

	Compactions uint64 `json:"compactions"`
	WALBytes    int64  `json:"wal_bytes"`

	// FullRebuildMS times one from-scratch CensusAll over every root on
	// the final graph; SpeedupVsRebuild is that divided by the mean
	// incremental apply time (how much the delta path saves per batch).
	FullRebuildMS    float64 `json:"full_rebuild_ms"`
	SpeedupVsRebuild float64 `json:"speedup_vs_rebuild"`

	// Fleet is the same durable path through the full sequenced fan-out:
	// router sequencer WAL fsync, per-shard sub-batch fan-out, and every
	// replica's own WAL fsync + incremental recompute before the ack.
	Fleet *fleetReport `json:"fleet,omitempty"`
}

// fleetReport tracks fleet-mode ingest: client-observed durable
// throughput and ack latency through hsgf-router's sequenced fan-out
// over an in-process follower fleet.
type fleetReport struct {
	Shards          int     `json:"shards"`
	Replicas        int     `json:"replicas_per_shard"`
	Batches         int     `json:"batches"`
	Mutations       int     `json:"mutations"`
	BatchesPerSec   float64 `json:"batches_per_sec"`
	MutationsPerSec float64 `json:"mutations_per_sec"`
	AckP50MS        float64 `json:"ack_p50_ms"`
	AckP99MS        float64 `json:"ack_p99_ms"`
}

func benchGraph() (*graph.Graph, error) {
	cfg := datagen.DefaultPublicationConfig()
	cfg.Institutions = 40
	cfg.Conferences = datagen.DefaultConferences[:3]
	cfg.Years = []int{2010, 2011, 2012, 2013}
	cfg.PapersPerConfYear = 25
	cfg.ExternalPapers = 400
	pub, err := datagen.GeneratePublication(cfg)
	if err != nil {
		return nil, err
	}
	return pub.Graph, nil
}

// nextBatch builds a small valid batch against g: one new edge between
// previously unconnected nodes, one relabel, and occasionally a new
// node — the steady-state shape of a growing information network.
func nextBatch(rng *rand.Rand, g *graph.Graph, k int) []graph.Mutation {
	labels := g.Alphabet().Names()
	var muts []graph.Mutation
	if k%8 == 0 {
		muts = append(muts, graph.Mutation{Op: graph.OpAddNode, Label: labels[rng.Intn(len(labels))]})
	}
	for {
		u := graph.NodeID(rng.Intn(g.NumNodes()))
		v := graph.NodeID(rng.Intn(g.NumNodes()))
		if u != v && !g.HasEdge(u, v) {
			muts = append(muts, graph.Mutation{Op: graph.OpAddEdge, U: u, V: v})
			break
		}
	}
	muts = append(muts, graph.Mutation{
		Op: graph.OpRelabel, U: graph.NodeID(rng.Intn(g.NumNodes())),
		Label: labels[rng.Intn(len(labels))],
	})
	return muts
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ingestbench:", err)
	os.Exit(1)
}

// nextFleetBatch builds a valid batch against the static seed graph,
// tracking edges added by earlier batches so no batch repeats one.
func nextFleetBatch(rng *rand.Rand, g *graph.Graph, added map[[2]graph.NodeID]bool, k int) []serve.IngestMutation {
	labels := g.Alphabet().Names()
	var muts []serve.IngestMutation
	if k%8 == 0 {
		muts = append(muts, serve.IngestMutation{Op: "add_node", Label: labels[rng.Intn(len(labels))]})
	}
	for {
		u := graph.NodeID(rng.Intn(g.NumNodes()))
		v := graph.NodeID(rng.Intn(g.NumNodes()))
		if u > v {
			u, v = v, u
		}
		if u != v && !g.HasEdge(u, v) && !added[[2]graph.NodeID{u, v}] {
			added[[2]graph.NodeID{u, v}] = true
			muts = append(muts, serve.IngestMutation{Op: "add_edge", U: int64(u), V: int64(v)})
			break
		}
	}
	muts = append(muts, serve.IngestMutation{
		Op: "relabel", U: int64(rng.Intn(g.NumNodes())),
		Label: labels[rng.Intn(len(labels))],
	})
	return muts
}

// runFleetBench boots an in-process fleet — nShards follower ingest
// daemons behind httptest listeners, fronted by a sequencing router —
// and drives batches through POST /v1/ingest, measuring what a client
// sees: durable, fully fan-out-confirmed acks.
func runFleetBench(g *graph.Graph, opts core.Options, nShards, batches int) (*fleetReport, error) {
	plans, err := graph.PartitionByRoot(g, graph.PartitionConfig{NumShards: nShards, HaloDepth: opts.MaxEdges})
	if err != nil {
		return nil, err
	}
	var backends []*httptest.Server
	defer func() {
		for _, ts := range backends {
			ts.Close()
		}
	}()
	urls := make([][]string, nShards)
	var engines []*ingest.Engine
	defer func() {
		for _, e := range engines {
			e.Close()
		}
	}()
	for _, p := range plans {
		dir, err := os.MkdirTemp("", "ingestbench-fleet-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		st, err := store.Open(dir, store.Options{})
		if err != nil {
			return nil, err
		}
		seed := p.Graph
		eng, err := ingest.Open(ingest.Config{Store: st, Opts: opts},
			func() (*graph.Graph, error) { return seed, nil })
		if err != nil {
			return nil, err
		}
		engines = append(engines, eng)
		_, ex, fs, gen, _ := eng.State()
		ss := serve.NewServerSnapshot(&serve.Snapshot{Extractor: ex, Features: fs, Generation: gen, Source: "ingest"}, serve.Config{})
		ss.SetIngestor(eng, "ingest")
		ss.SetFleetFollower(true)
		ts := httptest.NewServer(ss.Handler())
		backends = append(backends, ts)
		urls[p.Shard] = []string{ts.URL}
	}
	seqDir, err := os.MkdirTemp("", "ingestbench-seq-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(seqDir)
	rt, err := router.New(router.Config{
		Manifest:    router.BuildManifest(g.NumNodes(), opts.MaxEdges, plans),
		Shards:      urls,
		SeqLogPath:  filepath.Join(seqDir, "seq.wal"),
		IngestGraph: g,
	})
	if err != nil {
		return nil, err
	}
	defer rt.Close()
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	rep := &fleetReport{Shards: nShards, Replicas: 1, Batches: batches}
	rng := rand.New(rand.NewSource(2))
	added := make(map[[2]graph.NodeID]bool)
	lat := make([]time.Duration, 0, batches)
	start := time.Now()
	for k := 0; k < batches; k++ {
		body, err := json.Marshal(serve.IngestRequest{
			BatchID:   fmt.Sprintf("fleet-bench-%d", k),
			Mutations: nextFleetBatch(rng, g, added, k),
		})
		if err != nil {
			return nil, err
		}
		t0 := time.Now()
		resp, err := http.Post(front.URL+"/v1/ingest", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		raw, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("fleet batch %d: %d %s", k, resp.StatusCode, raw)
		}
		lat = append(lat, time.Since(t0))
	}
	elapsed := time.Since(start)

	rep.Mutations = 0
	for k := 0; k < batches; k++ {
		rep.Mutations += 2 // add_edge + relabel
		if k%8 == 0 {
			rep.Mutations++ // add_node
		}
	}
	rep.BatchesPerSec = float64(batches) / elapsed.Seconds()
	rep.MutationsPerSec = float64(rep.Mutations) / elapsed.Seconds()
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	rep.AckP50MS = float64(lat[len(lat)/2].Microseconds()) / 1000
	rep.AckP99MS = float64(lat[(len(lat)*99)/100].Microseconds()) / 1000
	return rep, nil
}

func main() {
	var (
		out          = flag.String("o", "BENCH_ingest.json", "output path ('-' for stdout)")
		batches      = flag.Int("batches", 200, "mutation batches to apply")
		emax         = flag.Int("emax", 2, "maximum edges per subgraph")
		compact      = flag.Int("compact-every", 64, "WAL fold interval in batches")
		fleetShards  = flag.Int("fleet-shards", 2, "shards in the fleet-mode bench (0 disables fleet mode)")
		fleetBatches = flag.Int("fleet-batches", 100, "batches to drive through the sequenced fan-out")
	)
	flag.Parse()

	g, err := benchGraph()
	if err != nil {
		fail(err)
	}
	dir, err := os.MkdirTemp("", "ingestbench-*")
	if err != nil {
		fail(err)
	}
	defer os.RemoveAll(dir)
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		fail(err)
	}
	opts := core.Options{MaxEdges: *emax, MaskRootLabel: true}
	eng, err := ingest.Open(ingest.Config{Store: st, Opts: opts, CompactEvery: *compact},
		func() (*graph.Graph, error) { return g, nil })
	if err != nil {
		fail(err)
	}
	defer eng.Close()

	rep := report{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Nodes:      g.NumNodes(),
		Edges:      g.NumEdges(),
		MaxEdges:   *emax,
		Batches:    *batches,
	}

	rng := rand.New(rand.NewSource(1))
	ctx := context.Background()
	lat := make([]time.Duration, 0, *batches)
	var totalDirty, totalMuts int
	start := time.Now()
	for k := 0; k < *batches; k++ {
		cur, _, _, _, _ := eng.State()
		muts := nextBatch(rng, cur, k)
		res, err := eng.Apply(ctx, fmt.Sprintf("bench-%d", k), muts)
		if err != nil {
			fail(fmt.Errorf("batch %d: %w", k, err))
		}
		lat = append(lat, res.Elapsed)
		totalDirty += len(res.DirtyRoots)
		totalMuts += len(muts)
		if len(res.DirtyRoots) > rep.MaxDirtyRoots {
			rep.MaxDirtyRoots = len(res.DirtyRoots)
		}
	}
	elapsed := time.Since(start)

	final, _, _, _, _ := eng.State()
	rep.Mutations = totalMuts
	rep.BatchesPerSec = float64(*batches) / elapsed.Seconds()
	rep.MutationsPerSec = float64(totalMuts) / elapsed.Seconds()
	rep.MeanDirtyRoots = float64(totalDirty) / float64(*batches)
	rep.MeanDirtyFrac = rep.MeanDirtyRoots / float64(final.NumNodes())
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	rep.IngestToServeP50MS = float64(lat[len(lat)/2].Microseconds()) / 1000
	rep.IngestToServeP99MS = float64(lat[(len(lat)*99)/100].Microseconds()) / 1000
	stats := eng.Stats()
	rep.Compactions = stats.Compactions
	rep.WALBytes = stats.WALBytes

	// The counterfactual: what every batch would cost without delta
	// maintenance — a full CensusAll over the final graph.
	ex, err := core.NewExtractor(final, opts)
	if err != nil {
		fail(err)
	}
	roots := make([]graph.NodeID, final.NumNodes())
	for i := range roots {
		roots[i] = graph.NodeID(i)
	}
	rebuildStart := time.Now()
	ex.CensusAll(roots, 0)
	rebuild := time.Since(rebuildStart)
	rep.FullRebuildMS = float64(rebuild.Microseconds()) / 1000
	meanApply := elapsed / time.Duration(*batches)
	if meanApply > 0 {
		rep.SpeedupVsRebuild = float64(rebuild) / float64(meanApply)
	}

	if *fleetShards > 0 && *fleetBatches > 0 {
		rep.Fleet, err = runFleetBench(g, opts, *fleetShards, *fleetBatches)
		if err != nil {
			fail(fmt.Errorf("fleet bench: %w", err))
		}
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr,
		"ingestbench: %.0f mutations/sec, ingest-to-serve p50 %.2fms p99 %.2fms, mean dirty %.1f/%d roots, %.1fx vs full rebuild\n",
		rep.MutationsPerSec, rep.IngestToServeP50MS, rep.IngestToServeP99MS,
		rep.MeanDirtyRoots, final.NumNodes(), rep.SpeedupVsRebuild)
	if rep.Fleet != nil {
		fmt.Fprintf(os.Stderr,
			"ingestbench: fleet (%d shards) %.0f mutations/sec, ack p50 %.2fms p99 %.2fms\n",
			rep.Fleet.Shards, rep.Fleet.MutationsPerSec, rep.Fleet.AckP50MS, rep.Fleet.AckP99MS)
	}
	fmt.Fprintf(os.Stderr, "ingestbench: wrote %s\n", *out)
}
