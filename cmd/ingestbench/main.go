// Command ingestbench runs the tracked streaming-ingest benchmark: it
// boots a WAL-backed ingest engine over the synthetic publication
// network, drives a deterministic stream of mutation batches through
// the full durable path — validate, WAL fsync, incremental dirty-ball
// recompute, publish — and writes the results as JSON
// (BENCH_ingest.json under `make bench`).
//
// The tracked numbers are mutations/sec and batches/sec of sustained
// durable throughput, the ingest-to-serve latency distribution (p50/p99
// from Apply entry to published state — what a client waits between ack
// and readable freshness), the dirty-set sizes that make incremental
// maintenance pay, and the measured speedup of a dirty-ball recompute
// over a from-scratch CensusAll of the whole graph.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"hsgf/internal/core"
	"hsgf/internal/datagen"
	"hsgf/internal/graph"
	"hsgf/internal/ingest"
	"hsgf/internal/store"
)

type report struct {
	Generated  string `json:"generated"`
	GoVersion  string `json:"go_version"`
	NumCPU     int    `json:"num_cpu"`
	GoMaxProcs int    `json:"gomaxprocs"`
	Nodes      int    `json:"graph_nodes"`
	Edges      int    `json:"graph_edges"`
	MaxEdges   int    `json:"emax"`

	Batches         int     `json:"batches"`
	Mutations       int     `json:"mutations"`
	BatchesPerSec   float64 `json:"batches_per_sec"`
	MutationsPerSec float64 `json:"mutations_per_sec"`

	// Ingest-to-serve: Apply entry to published (serving) state,
	// including the WAL fsync and the incremental recompute.
	IngestToServeP50MS float64 `json:"ingest_to_serve_p50_ms"`
	IngestToServeP99MS float64 `json:"ingest_to_serve_p99_ms"`

	MeanDirtyRoots float64 `json:"mean_dirty_roots"`
	MaxDirtyRoots  int     `json:"max_dirty_roots"`
	// MeanDirtyFrac is mean dirty roots over graph size — the fraction of
	// census work a full rebuild would waste per batch.
	MeanDirtyFrac float64 `json:"mean_dirty_frac"`

	Compactions uint64 `json:"compactions"`
	WALBytes    int64  `json:"wal_bytes"`

	// FullRebuildMS times one from-scratch CensusAll over every root on
	// the final graph; SpeedupVsRebuild is that divided by the mean
	// incremental apply time (how much the delta path saves per batch).
	FullRebuildMS    float64 `json:"full_rebuild_ms"`
	SpeedupVsRebuild float64 `json:"speedup_vs_rebuild"`
}

func benchGraph() (*graph.Graph, error) {
	cfg := datagen.DefaultPublicationConfig()
	cfg.Institutions = 40
	cfg.Conferences = datagen.DefaultConferences[:3]
	cfg.Years = []int{2010, 2011, 2012, 2013}
	cfg.PapersPerConfYear = 25
	cfg.ExternalPapers = 400
	pub, err := datagen.GeneratePublication(cfg)
	if err != nil {
		return nil, err
	}
	return pub.Graph, nil
}

// nextBatch builds a small valid batch against g: one new edge between
// previously unconnected nodes, one relabel, and occasionally a new
// node — the steady-state shape of a growing information network.
func nextBatch(rng *rand.Rand, g *graph.Graph, k int) []graph.Mutation {
	labels := g.Alphabet().Names()
	var muts []graph.Mutation
	if k%8 == 0 {
		muts = append(muts, graph.Mutation{Op: graph.OpAddNode, Label: labels[rng.Intn(len(labels))]})
	}
	for {
		u := graph.NodeID(rng.Intn(g.NumNodes()))
		v := graph.NodeID(rng.Intn(g.NumNodes()))
		if u != v && !g.HasEdge(u, v) {
			muts = append(muts, graph.Mutation{Op: graph.OpAddEdge, U: u, V: v})
			break
		}
	}
	muts = append(muts, graph.Mutation{
		Op: graph.OpRelabel, U: graph.NodeID(rng.Intn(g.NumNodes())),
		Label: labels[rng.Intn(len(labels))],
	})
	return muts
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "ingestbench:", err)
	os.Exit(1)
}

func main() {
	var (
		out     = flag.String("o", "BENCH_ingest.json", "output path ('-' for stdout)")
		batches = flag.Int("batches", 200, "mutation batches to apply")
		emax    = flag.Int("emax", 2, "maximum edges per subgraph")
		compact = flag.Int("compact-every", 64, "WAL fold interval in batches")
	)
	flag.Parse()

	g, err := benchGraph()
	if err != nil {
		fail(err)
	}
	dir, err := os.MkdirTemp("", "ingestbench-*")
	if err != nil {
		fail(err)
	}
	defer os.RemoveAll(dir)
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		fail(err)
	}
	opts := core.Options{MaxEdges: *emax, MaskRootLabel: true}
	eng, err := ingest.Open(ingest.Config{Store: st, Opts: opts, CompactEvery: *compact},
		func() (*graph.Graph, error) { return g, nil })
	if err != nil {
		fail(err)
	}
	defer eng.Close()

	rep := report{
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		NumCPU:     runtime.NumCPU(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Nodes:      g.NumNodes(),
		Edges:      g.NumEdges(),
		MaxEdges:   *emax,
		Batches:    *batches,
	}

	rng := rand.New(rand.NewSource(1))
	ctx := context.Background()
	lat := make([]time.Duration, 0, *batches)
	var totalDirty, totalMuts int
	start := time.Now()
	for k := 0; k < *batches; k++ {
		cur, _, _, _, _ := eng.State()
		muts := nextBatch(rng, cur, k)
		res, err := eng.Apply(ctx, fmt.Sprintf("bench-%d", k), muts)
		if err != nil {
			fail(fmt.Errorf("batch %d: %w", k, err))
		}
		lat = append(lat, res.Elapsed)
		totalDirty += len(res.DirtyRoots)
		totalMuts += len(muts)
		if len(res.DirtyRoots) > rep.MaxDirtyRoots {
			rep.MaxDirtyRoots = len(res.DirtyRoots)
		}
	}
	elapsed := time.Since(start)

	final, _, _, _, _ := eng.State()
	rep.Mutations = totalMuts
	rep.BatchesPerSec = float64(*batches) / elapsed.Seconds()
	rep.MutationsPerSec = float64(totalMuts) / elapsed.Seconds()
	rep.MeanDirtyRoots = float64(totalDirty) / float64(*batches)
	rep.MeanDirtyFrac = rep.MeanDirtyRoots / float64(final.NumNodes())
	sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
	rep.IngestToServeP50MS = float64(lat[len(lat)/2].Microseconds()) / 1000
	rep.IngestToServeP99MS = float64(lat[(len(lat)*99)/100].Microseconds()) / 1000
	stats := eng.Stats()
	rep.Compactions = stats.Compactions
	rep.WALBytes = stats.WALBytes

	// The counterfactual: what every batch would cost without delta
	// maintenance — a full CensusAll over the final graph.
	ex, err := core.NewExtractor(final, opts)
	if err != nil {
		fail(err)
	}
	roots := make([]graph.NodeID, final.NumNodes())
	for i := range roots {
		roots[i] = graph.NodeID(i)
	}
	rebuildStart := time.Now()
	ex.CensusAll(roots, 0)
	rebuild := time.Since(rebuildStart)
	rep.FullRebuildMS = float64(rebuild.Microseconds()) / 1000
	meanApply := elapsed / time.Duration(*batches)
	if meanApply > 0 {
		rep.SpeedupVsRebuild = float64(rebuild) / float64(meanApply)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err)
	}
	buf = append(buf, '\n')
	if *out == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr,
		"ingestbench: %.0f mutations/sec, ingest-to-serve p50 %.2fms p99 %.2fms, mean dirty %.1f/%d roots, %.1fx vs full rebuild\n",
		rep.MutationsPerSec, rep.IngestToServeP50MS, rep.IngestToServeP99MS,
		rep.MeanDirtyRoots, final.NumNodes(), rep.SpeedupVsRebuild)
	fmt.Fprintf(os.Stderr, "ingestbench: wrote %s\n", *out)
}
