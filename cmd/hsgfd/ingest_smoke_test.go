//go:build smoke

// Fault-injection smoke suite for streaming ingest: builds the real
// daemon under the race detector and drives it through the crash
// windows the WAL exists for — SIGKILL mid-batch, a torn WAL tail, a
// bit-flipped WAL record, and a full duplicate-replay storm — asserting
// the recovery contract end to end: no acked batch is lost (except
// detected, truncated corruption), no batch is ever applied twice, and
// the recovered daemon's censuses are identical to an uninterrupted
// run of the same batches on a fresh store (which also exercises
// compaction, running with a much smaller fold interval).
//
// Gated behind the "smoke" build tag; run it with `make ingest-smoke`.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

const (
	ingestSeedNodes = 60
	ingestBatches   = 9
)

// ingestBatchBody builds the k-th batch of the canonical smoke stream:
// grow by one node wired to node k, plus a relabel for dirty-ball
// variety. The new node's ID is seedN+k, which is only correct when
// batches apply exactly once and in order — so a duplicate application
// or a lost acked batch shifts every later node ID and shows up as a
// census mismatch against the oracle run.
func ingestBatchBody(k int) string {
	labels := []string{"loc", "org", "act"}
	return fmt.Sprintf(
		`{"batch_id":"smoke-%d","mutations":[`+
			`{"op":"add_node","label":"org"},`+
			`{"op":"add_edge","u":%d,"v":%d},`+
			`{"op":"relabel","u":%d,"label":"%s"}]}`,
		k, ingestSeedNodes+k, k, (k*7)%ingestSeedNodes, labels[k%3])
}

// smokeDaemon is one running hsgfd under test.
type smokeDaemon struct {
	cmd   *exec.Cmd
	base  string
	logMu sync.Mutex
	log   bytes.Buffer
}

func startSmokeDaemon(t *testing.T, bin string, args ...string) *smokeDaemon {
	t.Helper()
	d := &smokeDaemon{cmd: exec.Command(bin, args...)}
	stderr, err := d.cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := d.cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if d.cmd.Process != nil {
			_ = d.cmd.Process.Kill()
		}
	})
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			d.logMu.Lock()
			fmt.Fprintln(&d.log, line)
			d.logMu.Unlock()
			if i := strings.Index(line, "listening on "); i >= 0 {
				addr := strings.Fields(line[i+len("listening on "):])[0]
				select {
				case addrCh <- addr:
				default:
				}
			}
		}
	}()
	select {
	case addr := <-addrCh:
		d.base = "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatalf("daemon never reported its listen address; log:\n%s", d.tail())
	}
	return d
}

func (d *smokeDaemon) tail() string {
	d.logMu.Lock()
	defer d.logMu.Unlock()
	return d.log.String()
}

// kill9 SIGKILLs the daemon — the crash the WAL is for.
func (d *smokeDaemon) kill9(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_ = d.cmd.Wait()
}

// drain SIGTERMs the daemon and requires a clean exit 0.
func (d *smokeDaemon) drain(t *testing.T) {
	t.Helper()
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- d.cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("daemon exited non-zero after SIGTERM: %v\n%s", err, d.tail())
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit within the drain window")
	}
}

type ingestAck struct {
	Seq        uint64 `json:"seq"`
	Replayed   bool   `json:"replayed"`
	DirtyRoots int    `json:"dirty_roots"`
}

// sendBatch posts one mutation batch and decodes the ack.
func sendBatch(t *testing.T, base, body string) (int, ingestAck) {
	t.Helper()
	resp, err := http.Post(base+"/v1/ingest", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/ingest: %v", err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var ack ingestAck
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(raw, &ack); err != nil {
			t.Fatalf("undecodable ingest ack %q: %v", raw, err)
		}
	} else {
		t.Logf("ingest non-200: %d %s", resp.StatusCode, raw)
	}
	return resp.StatusCode, ack
}

// metaShape fetches /v1/meta's node/edge counts and fingerprint.
func metaShape(t *testing.T, base string) (nodes, edges int, fingerprint string) {
	t.Helper()
	resp, err := http.Get(base + "/v1/meta")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var meta struct {
		Nodes       int    `json:"nodes"`
		Edges       int    `json:"edges"`
		Fingerprint string `json:"fingerprint"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&meta); err != nil {
		t.Fatal(err)
	}
	return meta.Nodes, meta.Edges, meta.Fingerprint
}

// allCensuses extracts every root's census as content-keyed count maps —
// the oracle-comparable form (keys are decoded encodings, independent
// of column order and extraction history).
func allCensuses(t *testing.T, base string, n int) []map[string]int64 {
	t.Helper()
	roots := make([]int64, n)
	for i := range roots {
		roots[i] = int64(i)
	}
	body, _ := json.Marshal(map[string]any{"roots": roots, "deadline_ms": 60000})
	resp, err := http.Post(base+"/v1/features", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("features = %d: %s", resp.StatusCode, raw)
	}
	var feat struct {
		Rows []struct {
			Root   int64            `json:"root"`
			Flags  string           `json:"flags"`
			Counts map[string]int64 `json:"counts"`
		} `json:"rows"`
		Degraded bool `json:"degraded"`
	}
	if err := json.Unmarshal(raw, &feat); err != nil {
		t.Fatal(err)
	}
	if feat.Degraded {
		t.Fatal("oracle extraction degraded; raise the deadline")
	}
	out := make([]map[string]int64, n)
	for _, r := range feat.Rows {
		out[r.Root] = r.Counts
	}
	return out
}

func TestIngestSmoke(t *testing.T) {
	tmp := t.TempDir()
	tsv := filepath.Join(tmp, "graph.tsv")
	writeSyntheticGraph(t, tsv, ingestSeedNodes)
	storeDir := filepath.Join(tmp, "store")
	walPath := filepath.Join(storeDir, "ingest.wal")

	bin := filepath.Join(tmp, "hsgfd")
	build := exec.Command("go", "build", "-race", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build -race: %v\n%s", err, out)
	}
	// The crash-prone daemon never compacts (WAL retains every record, so
	// tearing and flipping its tail stays meaningful); the oracle at the
	// end compacts aggressively, proving compaction preserves semantics.
	args := func(dir string, compactEvery int) []string {
		return []string{
			"-store", dir, "-in", tsv, "-ingest",
			"-ingest-compact-every", fmt.Sprint(compactEvery),
			"-emax", "3", "-addr", "127.0.0.1:0", "-drain-grace", "10s",
		}
	}

	// Phase 1 — ack five batches, then SIGKILL with a sixth in flight.
	d := startSmokeDaemon(t, bin, args(storeDir, 1000)...)
	for k := 0; k < 5; k++ {
		code, ack := sendBatch(t, d.base, ingestBatchBody(k))
		if code != http.StatusOK || ack.Replayed || ack.Seq != uint64(k+1) {
			t.Fatalf("batch %d: code %d ack %+v", k, code, ack)
		}
	}
	inFlight := make(chan struct{})
	go func() {
		defer close(inFlight)
		// The ack may never arrive; the batch may or may not be durable.
		resp, err := http.Post(d.base+"/v1/ingest", "application/json",
			strings.NewReader(ingestBatchBody(5)))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	d.kill9(t)
	<-inFlight

	// Phase 2 — recover, prove every acked batch survived and none
	// double-applies: re-sending them acks Replayed with the original
	// sequence. The in-flight batch lands either way (fresh or replayed —
	// the idempotency key makes the retry safe), then the stream resumes.
	d = startSmokeDaemon(t, bin, args(storeDir, 1000)...)
	for k := 0; k < 5; k++ {
		code, ack := sendBatch(t, d.base, ingestBatchBody(k))
		if code != http.StatusOK || !ack.Replayed || ack.Seq != uint64(k+1) {
			t.Fatalf("post-crash replay of batch %d: code %d ack %+v (acked batch lost or re-applied)", k, code, ack)
		}
	}
	if code, ack := sendBatch(t, d.base, ingestBatchBody(5)); code != http.StatusOK || ack.Seq != 6 {
		t.Fatalf("in-flight batch retry: code %d ack %+v", code, ack)
	} else {
		t.Logf("in-flight batch 5: replayed=%v (both outcomes are contract-valid)", ack.Replayed)
	}
	for k := 6; k < 8; k++ {
		if code, ack := sendBatch(t, d.base, ingestBatchBody(k)); code != http.StatusOK || ack.Replayed {
			t.Fatalf("batch %d after recovery: code %d ack %+v", k, code, ack)
		}
	}
	if n, _, _ := metaShape(t, d.base); n != ingestSeedNodes+8 {
		t.Fatalf("nodes after 8 batches = %d, want %d", n, ingestSeedNodes+8)
	}
	d.kill9(t)

	// Phase 3 — torn tail: a crash mid-append leaves a partial frame
	// after the last fsynced record. Recovery must truncate exactly the
	// torn suffix and keep every acked batch.
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("WREC\x09\x00\x00\x00par")); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	d = startSmokeDaemon(t, bin, args(storeDir, 1000)...)
	if n, _, _ := metaShape(t, d.base); n != ingestSeedNodes+8 {
		t.Fatalf("nodes after torn-tail recovery = %d, want %d (acked batch lost)", n, ingestSeedNodes+8)
	}
	if code, ack := sendBatch(t, d.base, ingestBatchBody(3)); code != http.StatusOK || !ack.Replayed {
		t.Fatalf("replay after torn-tail recovery: code %d ack %+v", code, ack)
	}
	if code, ack := sendBatch(t, d.base, ingestBatchBody(8)); code != http.StatusOK || ack.Replayed || ack.Seq != 9 {
		t.Fatalf("batch 8: code %d ack %+v", code, ack)
	}
	d.kill9(t)

	// Phase 4 — bit flip inside the last WAL record: the CRC detects it
	// and recovery drops the corrupted suffix — an honest, *detected*
	// loss of batch 8 (torn-tail truncation logs it), never a silent
	// wrong census. The daemon still boots and the retry (same batch ID)
	// applies fresh.
	info, err := os.Stat(walPath)
	if err != nil {
		t.Fatal(err)
	}
	f, err = os.OpenFile(walPath, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xFF}, info.Size()-10); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	d = startSmokeDaemon(t, bin, args(storeDir, 1000)...)
	if n, _, _ := metaShape(t, d.base); n != ingestSeedNodes+8 {
		t.Fatalf("nodes after bit-flip recovery = %d, want %d (corruption not truncated at the right frame)", n, ingestSeedNodes+8)
	}
	if code, ack := sendBatch(t, d.base, ingestBatchBody(8)); code != http.StatusOK || ack.Replayed || ack.Seq != 9 {
		t.Fatalf("batch 8 retry after bit flip: code %d ack %+v (should re-apply fresh)", code, ack)
	}

	// Phase 5 — duplicate-replay storm: every batch re-sent once more;
	// all must ack Replayed, and the graph must not move.
	nBefore, eBefore, fpBefore := metaShape(t, d.base)
	for k := 0; k < ingestBatches; k++ {
		if code, ack := sendBatch(t, d.base, ingestBatchBody(k)); code != http.StatusOK || !ack.Replayed {
			t.Fatalf("replay storm batch %d: code %d ack %+v", k, code, ack)
		}
	}
	nAfter, eAfter, fpAfter := metaShape(t, d.base)
	if nAfter != nBefore || eAfter != eBefore || fpAfter != fpBefore {
		t.Fatalf("replay storm mutated state: %d/%d/%s -> %d/%d/%s",
			nBefore, eBefore, fpBefore, nAfter, eAfter, fpAfter)
	}
	if nAfter != ingestSeedNodes+ingestBatches {
		t.Fatalf("final nodes = %d, want %d", nAfter, ingestSeedNodes+ingestBatches)
	}

	// Phase 6 — oracle: an uninterrupted daemon on a fresh store applies
	// the same nine batches (compacting every 2, so the stream crosses
	// several snapshot folds) and must serve byte-for-byte identical
	// censuses for every root, with the same fingerprint.
	oracle := startSmokeDaemon(t, bin, args(filepath.Join(tmp, "oracle"), 2)...)
	for k := 0; k < ingestBatches; k++ {
		if code, ack := sendBatch(t, oracle.base, ingestBatchBody(k)); code != http.StatusOK || ack.Replayed {
			t.Fatalf("oracle batch %d: code %d ack %+v", k, code, ack)
		}
	}
	oN, oE, oFP := metaShape(t, oracle.base)
	if oN != nAfter || oE != eAfter || oFP != fpAfter {
		t.Fatalf("oracle shape %d/%d/%s != recovered shape %d/%d/%s",
			oN, oE, oFP, nAfter, eAfter, fpAfter)
	}
	got := allCensuses(t, d.base, nAfter)
	want := allCensuses(t, oracle.base, oN)
	for v := range want {
		if len(got[v]) != len(want[v]) {
			t.Fatalf("root %d: %d census keys recovered vs %d oracle", v, len(got[v]), len(want[v]))
		}
		for key, count := range want[v] {
			if got[v][key] != count {
				t.Fatalf("root %d: census %q = %d recovered, %d oracle", v, key, got[v][key], count)
			}
		}
	}

	// The oracle must actually have compacted, and both drain cleanly.
	resp, err := http.Get(oracle.base + "/debug/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Ingest struct {
			Compactions uint64 `json:"compactions"`
			LastSeq     uint64 `json:"last_seq"`
		} `json:"ingest"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Ingest.Compactions == 0 || stats.Ingest.LastSeq != ingestBatches {
		t.Fatalf("oracle ingest stats = %+v, want compactions > 0 and last_seq %d", stats.Ingest, ingestBatches)
	}
	d.drain(t)
	oracle.drain(t)
}
