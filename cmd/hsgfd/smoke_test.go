//go:build smoke

// End-to-end smoke test for the serving daemon: builds the real binary
// under the race detector, boots it on a synthetic graph, exercises the
// happy path, a degraded (budget-truncated) extraction, request
// validation, an overload burst against a one-slot admission gate, and a
// SIGTERM drain — asserting the process exits 0 after a clean drain.
//
// Gated behind the "smoke" build tag so the ordinary test run stays
// fast; run it with `make serve-smoke`.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"hsgf/internal/graph"
)

// writeSyntheticGraph writes a hub-skewed labelled graph in the TSV
// exchange format: one runaway hub plus a sparse periphery, the shape
// the daemon's admission control exists for.
func writeSyntheticGraph(t *testing.T, path string, n int) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	b := graph.NewBuilderWithAlphabet(graph.MustAlphabet("loc", "org", "act"))
	for i := 0; i < n; i++ {
		if _, err := b.AddLabeledNode(graph.Label(rng.Intn(3))); err != nil {
			t.Fatal(err)
		}
	}
	for v := 1; v < n; v++ {
		if err := b.AddEdge(0, graph.NodeID(v)); err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 3; k++ {
			u := 1 + rng.Intn(n-1)
			if u != v {
				if err := b.AddEdge(graph.NodeID(v), graph.NodeID(u)); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteTSV(f, b.MustBuild()); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestServeSmoke(t *testing.T) {
	tmp := t.TempDir()
	tsv := filepath.Join(tmp, "graph.tsv")
	writeSyntheticGraph(t, tsv, 400)

	bin := filepath.Join(tmp, "hsgfd")
	build := exec.Command("go", "build", "-race", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build -race: %v\n%s", err, out)
	}

	cmd := exec.Command(bin,
		"-in", tsv,
		"-addr", "127.0.0.1:0",
		"-emax", "4",
		"-dmax-percentile", "0.95",
		"-root-budget", "50000",
		"-max-inflight", "1",
		"-max-queue", "1",
		"-drain-grace", "10s",
	)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
		}
	}()

	// The daemon logs its resolved listen address; scan stderr for it and
	// keep draining the pipe so the process never blocks on logging.
	addrCh := make(chan string, 1)
	var logTail bytes.Buffer
	var logMu sync.Mutex
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			logMu.Lock()
			fmt.Fprintln(&logTail, line)
			logMu.Unlock()
			if i := strings.Index(line, "listening on "); i >= 0 {
				addr := strings.Fields(line[i+len("listening on "):])[0]
				select {
				case addrCh <- addr:
				default:
				}
			}
		}
	}()
	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never reported its listen address")
	}

	get := func(path string) (int, []byte) {
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, body
	}
	post := func(body string) (int, []byte) {
		resp, err := http.Post(base+"/v1/features", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST /v1/features: %v", err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, b
	}

	// Liveness, readiness, metadata.
	if code, _ := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	if code, _ := get("/readyz"); code != http.StatusOK {
		t.Fatalf("readyz = %d", code)
	}
	code, body := get("/v1/meta")
	if code != http.StatusOK {
		t.Fatalf("meta = %d: %s", code, body)
	}
	var meta struct {
		Fingerprint string `json:"fingerprint"`
		Nodes       int    `json:"nodes"`
	}
	if err := json.Unmarshal(body, &meta); err != nil || meta.Nodes != 400 || meta.Fingerprint == "" {
		t.Fatalf("meta body %s (err %v)", body, err)
	}

	// Happy-path extraction.
	code, body = post(`{"roots":[1,2,3]}`)
	if code != http.StatusOK {
		t.Fatalf("features = %d: %s", code, body)
	}
	var feat struct {
		Rows     []struct{ Flags string }
		Degraded bool
	}
	if err := json.Unmarshal(body, &feat); err != nil || len(feat.Rows) != 3 {
		t.Fatalf("features body %s (err %v)", body, err)
	}

	// Degraded-not-failed: an absurdly tight budget truncates rows but
	// the request still succeeds with flags.
	code, body = post(`{"roots":[1,2],"root_budget":1}`)
	if code != http.StatusOK {
		t.Fatalf("budget-truncated features = %d: %s", code, body)
	}
	var trunc struct{ Degraded bool }
	if err := json.Unmarshal(body, &trunc); err != nil || !trunc.Degraded {
		t.Fatalf("budget truncation not marked degraded: %s", body)
	}

	// Validation.
	if code, _ = post(`{"roots":[]}`); code != http.StatusBadRequest {
		t.Fatalf("empty roots = %d, want 400", code)
	}

	// Overload burst against a one-slot gate: every response must be a
	// typed status (200 accepted, 429 shed, 503 queue-timeout/breaker) —
	// never a transport error or a hung connection.
	const burst = 16
	codes := make([]int, burst)
	var wg sync.WaitGroup
	for i := 0; i < burst; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(base+"/v1/features", "application/json",
				strings.NewReader(`{"roots":[0],"deadline_ms":2000}`))
			if err != nil {
				t.Errorf("burst request %d: %v", i, err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes[i] = resp.StatusCode
		}(i)
	}
	wg.Wait()
	tally := map[int]int{}
	for _, c := range codes {
		switch c {
		case http.StatusOK, http.StatusTooManyRequests, http.StatusServiceUnavailable:
			tally[c]++
		default:
			t.Fatalf("burst produced untyped status %d (tally so far %v)", c, tally)
		}
	}
	t.Logf("burst outcomes: %v", tally)
	if tally[http.StatusOK] == 0 {
		t.Error("overload burst starved every request; at least one must be served")
	}

	code, body = get("/debug/stats")
	if code != http.StatusOK {
		t.Fatalf("stats = %d", code)
	}
	var stats struct {
		Accepted  int64 `json:"accepted"`
		Completed int64 `json:"completed"`
	}
	if err := json.Unmarshal(body, &stats); err != nil || stats.Completed < 2 {
		t.Fatalf("stats body %s (err %v)", body, err)
	}

	// Graceful drain: SIGTERM, clean exit 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			logMu.Lock()
			tail := logTail.String()
			logMu.Unlock()
			t.Fatalf("daemon exited non-zero after SIGTERM: %v\n%s", err, tail)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit within the drain window after SIGTERM")
	}
	logMu.Lock()
	tail := logTail.String()
	logMu.Unlock()
	if !strings.Contains(tail, "drained cleanly") {
		t.Errorf("daemon log missing clean-drain marker:\n%s", tail)
	}
}
