//go:build smoke

// End-to-end smoke test for zero-downtime hot reload: builds the real
// binary under the race detector, boots it on an artifact store seeded
// from a TSV graph, then — while client traffic hammers /v1/features —
// rotates new graph generations in via POST /v1/admin/reload and
// SIGHUP, corrupts a snapshot on disk to prove the daemon quarantines
// it and keeps serving the last good generation, and finally drains
// cleanly. Zero requests may fail across every reload.
//
// Gated behind the "smoke" build tag; run it with `make reload-smoke`.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"hsgf"
	"hsgf/internal/graph"
)

// buildGraph assembles a connected labelled graph of n nodes in memory,
// seeded so distinct sizes give distinct fingerprints.
func buildGraph(t *testing.T, n int, seed int64) *hsgf.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilderWithAlphabet(graph.MustAlphabet("loc", "org", "act"))
	for i := 0; i < n; i++ {
		if _, err := b.AddLabeledNode(graph.Label(rng.Intn(3))); err != nil {
			t.Fatal(err)
		}
	}
	for v := 1; v < n; v++ {
		if err := b.AddEdge(graph.NodeID(rng.Intn(v)), graph.NodeID(v)); err != nil {
			t.Fatal(err)
		}
		u := rng.Intn(n)
		if u != v {
			if err := b.AddEdge(graph.NodeID(v), graph.NodeID(u)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return b.MustBuild()
}

func TestReloadSmoke(t *testing.T) {
	tmp := t.TempDir()
	tsv := filepath.Join(tmp, "graph.tsv")
	storeDir := filepath.Join(tmp, "store")

	f, err := os.Create(tsv)
	if err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteTSV(f, buildGraph(t, 200, 1)); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	bin := filepath.Join(tmp, "hsgfd")
	build := exec.Command("go", "build", "-race", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build -race: %v\n%s", err, out)
	}

	cmd := exec.Command(bin,
		"-in", tsv,
		"-store", storeDir,
		"-addr", "127.0.0.1:0",
		"-emax", "3",
		"-max-inflight", "8",
		"-max-queue", "64",
		"-drain-grace", "10s",
	)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if cmd.Process != nil {
			_ = cmd.Process.Kill()
		}
	}()

	addrCh := make(chan string, 1)
	var logTail bytes.Buffer
	var logMu sync.Mutex
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			logMu.Lock()
			fmt.Fprintln(&logTail, line)
			logMu.Unlock()
			if i := strings.Index(line, "listening on "); i >= 0 {
				addr := strings.Fields(line[i+len("listening on "):])[0]
				select {
				case addrCh <- addr:
				default:
				}
			}
		}
	}()
	var base string
	select {
	case addr := <-addrCh:
		base = "http://" + addr
	case <-time.After(30 * time.Second):
		t.Fatal("daemon never reported its listen address")
	}

	type metaBody struct {
		Fingerprint string `json:"fingerprint"`
		Generation  uint64 `json:"generation"`
		Nodes       int    `json:"nodes"`
	}
	getMeta := func() metaBody {
		resp, err := http.Get(base + "/v1/meta")
		if err != nil {
			t.Fatalf("GET /v1/meta: %v", err)
		}
		defer resp.Body.Close()
		var m metaBody
		if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
			t.Fatalf("meta decode: %v", err)
		}
		return m
	}

	// Boot imported the TSV into the store as generation 1.
	if m := getMeta(); m.Generation != 1 || m.Nodes != 200 {
		t.Fatalf("boot meta = %+v, want generation 1 over 200 nodes", m)
	}

	// Client traffic for the whole reload sequence: every response must
	// be a fully served 200 — a reload that drops or fails a request is
	// the bug this test exists to catch.
	var (
		stop      atomic.Bool
		served    atomic.Int64
		failedN   atomic.Int64
		trafficWG sync.WaitGroup
	)
	for c := 0; c < 4; c++ {
		trafficWG.Add(1)
		go func() {
			defer trafficWG.Done()
			for !stop.Load() {
				resp, err := http.Post(base+"/v1/features", "application/json",
					strings.NewReader(`{"roots":[1,2,3]}`))
				if err != nil {
					failedN.Add(1)
					t.Errorf("traffic request: %v", err)
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					failedN.Add(1)
					t.Errorf("traffic request: status %d", resp.StatusCode)
					continue
				}
				served.Add(1)
			}
		}()
	}

	reload := func() (int, map[string]any) {
		resp, err := http.Post(base+"/v1/admin/reload", "application/json", nil)
		if err != nil {
			t.Fatalf("POST /v1/admin/reload: %v", err)
		}
		defer resp.Body.Close()
		var body map[string]any
		json.NewDecoder(resp.Body).Decode(&body)
		return resp.StatusCode, body
	}

	// Rotate a bigger graph in as generation 2 and hot-reload it.
	st, err := hsgf.OpenStore(storeDir, hsgf.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := hsgf.SaveGraphSnapshot(st, buildGraph(t, 300, 2))
	if err != nil {
		t.Fatal(err)
	}
	if gen != 2 {
		t.Fatalf("second snapshot = generation %d, want 2", gen)
	}
	if code, body := reload(); code != http.StatusOK {
		t.Fatalf("reload to generation 2 = %d: %v", code, body)
	}
	if m := getMeta(); m.Generation != 2 || m.Nodes != 300 {
		t.Fatalf("post-reload meta = %+v, want generation 2 over 300 nodes", m)
	}

	// Corrupt the next generation on disk: the daemon must quarantine it
	// during reload and keep serving generation 2 — no crash, no outage.
	if _, err := hsgf.SaveGraphSnapshot(st, buildGraph(t, 250, 3)); err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(storeDir, "graph-g0000000003.snap")
	raw, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(snapPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if code, body := reload(); code != http.StatusOK {
		t.Fatalf("reload over corrupt generation 3 = %d: %v (must fall back, not fail)", code, body)
	}
	if m := getMeta(); m.Generation != 2 || m.Nodes != 300 {
		t.Fatalf("meta after corrupt generation = %+v, want generation 2 still serving", m)
	}
	if _, err := os.Stat(snapPath + ".corrupt"); err != nil {
		t.Errorf("corrupt snapshot not quarantined: %v", err)
	}

	// SIGHUP picks up a fresh good generation without any HTTP trigger.
	if gen, err = hsgf.SaveGraphSnapshot(st, buildGraph(t, 350, 4)); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Process.Signal(syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		if m := getMeta(); m.Generation == gen && m.Nodes == 350 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("SIGHUP reload never reached generation %d: meta %+v", gen, getMeta())
		}
		time.Sleep(100 * time.Millisecond)
	}

	stop.Store(true)
	trafficWG.Wait()
	if failedN.Load() != 0 {
		t.Fatalf("%d requests failed across reloads (%d served)", failedN.Load(), served.Load())
	}
	t.Logf("served %d requests across reload sequence with zero failures", served.Load())

	// Reload stats surfaced the failure-free rotation.
	resp, err := http.Get(base + "/debug/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Reloads  int64 `json:"reloads"`
		ReloadOK int64 `json:"reload_ok"`
	}
	err = json.NewDecoder(resp.Body).Decode(&stats)
	resp.Body.Close()
	if err != nil || stats.ReloadOK < 3 {
		t.Fatalf("stats = %+v (err %v), want >= 3 successful reloads", stats, err)
	}

	// Graceful drain still works after the reload churn.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			logMu.Lock()
			tail := logTail.String()
			logMu.Unlock()
			t.Fatalf("daemon exited non-zero after SIGTERM: %v\n%s", err, tail)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not exit within the drain window after SIGTERM")
	}
}
