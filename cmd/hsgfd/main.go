// Command hsgfd is the hardened feature-serving daemon: it loads a graph
// in the TSV exchange format once, builds a census extractor over it, and
// serves heterogeneous subgraph features over a long-lived HTTP JSON API.
//
// Usage:
//
//	hsgfd -in graph.tsv [-store DIR] [-addr :8080] [-emax 5] [-mask] \
//	      [-dmax N | -dmax-percentile 0.9] [-root-budget N] [-root-deadline 2s] \
//	      [-max-inflight 4] [-max-queue 8] [-default-deadline 10s] \
//	      [-drain-grace 15s] [-pprof-addr localhost:6060]
//
// Endpoints:
//
//	POST /v1/features      roots -> characteristic-sequence feature rows
//	POST /v1/ingest        apply a durable graph-mutation batch (-ingest mode)
//	GET  /v1/meta          graph/options fingerprint, generation, limits
//	POST /v1/admin/reload  verify + swap in the newest artifact generation
//	GET  /healthz          liveness
//	GET  /readyz           readiness (503 while draining)
//	GET  /debug/stats      admission/breaker/reload counters + latency histogram
//
// The daemon is built for the heavy-tailed per-root extraction cost of
// real networks: requests pass bounded admission (429 + Retry-After when
// the wait queue is full), a circuit breaker around extraction (503 with
// a typed JSON error while open), and per-request deadlines that degrade
// results row by row (HTTP 200 + flags) rather than failing the batch.
// SIGTERM/SIGINT starts a graceful drain: the listener closes, in-flight
// requests get -drain-grace to finish, then the process exits 0 on a
// clean drain and 1 otherwise.
//
// With -store DIR the graph is served from a crash-safe artifact store
// of checksummed, generation-numbered snapshots: the daemon boots from
// the newest generation that passes verification (quarantining corrupt
// ones), and SIGHUP or POST /v1/admin/reload hot-swaps the newest good
// generation in with zero downtime — in-flight requests finish on the
// generation they started with. When both -in and -store are given and
// the store is empty, the TSV graph is imported as generation 1.
// Without -store, -in alone still supports hot reload by re-reading the
// TSV file.
//
// With -ingest (requires -store) the daemon accepts streaming graph
// mutations on POST /v1/ingest: each batch is made durable in a
// write-ahead log before it is acknowledged, only the census rows
// inside the mutations' distance-≤emax ball are recomputed, and the
// updated state is swapped into the serving path before the ack is
// sent. On restart — clean or after a crash — the daemon recovers from
// the newest verified ingest snapshot plus the WAL tail, so no acked
// batch is ever lost and replayed batch IDs are acknowledged without
// being applied twice. In ingest mode the engine owns the serving
// state, so artifact hot reload (-store generations via SIGHUP or
// /v1/admin/reload) is disabled, and -dmax-percentile is rejected: a
// percentile cutoff would drift as the graph mutates, silently changing
// feature semantics between restarts. The fixed -dmax cutoff is stable
// under mutation and works in either mode.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux; served only via -pprof-addr
	"os"
	"os/signal"
	"syscall"
	"time"

	"hsgf"
	"hsgf/internal/graph"
	"hsgf/internal/ingest"
	"hsgf/internal/serve"
)

func main() {
	var (
		in       = flag.String("in", "", "input graph in TSV exchange format")
		storeDir = flag.String("store", "", "artifact store directory: boot from and hot-reload checksummed graph snapshots")
		retain   = flag.Int("retain", 0, "snapshot generations retained per artifact kind (0 = store default)")
		addr     = flag.String("addr", ":8080", "listen address")
		emax     = flag.Int("emax", 5, "maximum edges per subgraph")
		dmax     = flag.Int("dmax", 0, "fixed hub degree cutoff; 0 disables")
		dmaxPct  = flag.Float64("dmax-percentile", 0, "hub cutoff as a degree percentile in (0,1); 0 disables")
		mask     = flag.Bool("mask", false, "mask the root node's label during extraction")

		rootBudget   = flag.Int64("root-budget", 0, "default max subgraphs enumerated per root; 0 = unlimited")
		rootDeadline = flag.Duration("root-deadline", 0, "default max wall-clock time per root; 0 = unlimited")

		maxInflight = flag.Int("max-inflight", 4, "concurrent extracting requests")
		rowCache    = flag.Int("row-cache", serve.DefaultRowCache, "feature-row cache bound in rows across all shards; 0 disables caching and request coalescing")
		maxQueue    = flag.Int("max-queue", 0, "queued requests beyond in-flight before shedding (0 = 2x in-flight)")
		maxRoots    = flag.Int("max-roots", 256, "max roots per request")
		workers     = flag.Int("request-workers", 1, "census workers per request")

		defaultDeadline = flag.Duration("default-deadline", 10*time.Second, "extraction deadline when the client sends none")
		maxDeadline     = flag.Duration("max-deadline", 60*time.Second, "cap on client-requested deadlines")

		brkWindow   = flag.Int("breaker-window", 20, "request outcomes in the breaker's sliding window")
		brkRatio    = flag.Float64("breaker-ratio", 0.5, "windowed failure ratio that opens the breaker")
		brkCooldown = flag.Duration("breaker-cooldown", 5*time.Second, "open time before half-open probes")

		drainGrace = flag.Duration("drain-grace", 15*time.Second, "max wait for in-flight requests on shutdown")

		ingestOn      = flag.Bool("ingest", false, "accept streaming graph mutations on POST /v1/ingest (requires -store)")
		ingestCompact = flag.Int("ingest-compact-every", 0, "fold the WAL into a snapshot after this many batches (0 = engine default)")
		ingestWorkers = flag.Int("ingest-workers", 0, "census workers for incremental recomputation (0 = GOMAXPROCS)")
		fleetFollower = flag.Bool("fleet-follower", false, "accept only hsgf-router-sequenced fleet batches on /v1/ingest (requires -ingest); direct client writes get 403")

		pprofAddr = flag.String("pprof-addr", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables")
	)
	flag.Parse()
	if *in == "" && *storeDir == "" {
		fmt.Fprintln(os.Stderr, "hsgfd: need -in, -store, or both")
		flag.Usage()
		os.Exit(2)
	}
	if *fleetFollower && !*ingestOn {
		fmt.Fprintln(os.Stderr, "hsgfd: -fleet-follower requires -ingest")
		os.Exit(2)
	}
	if *ingestOn && *storeDir == "" {
		fmt.Fprintln(os.Stderr, "hsgfd: -ingest requires -store (the WAL and ingest snapshots live there)")
		os.Exit(2)
	}
	if *dmax < 0 {
		fmt.Fprintln(os.Stderr, "hsgfd: -dmax must be >= 0")
		os.Exit(2)
	}
	if *dmax > 0 && *dmaxPct != 0 {
		fmt.Fprintln(os.Stderr, "hsgfd: -dmax and -dmax-percentile are mutually exclusive")
		os.Exit(2)
	}
	if *ingestOn && *dmaxPct != 0 {
		fmt.Fprintln(os.Stderr, "hsgfd: -dmax-percentile is incompatible with -ingest: a percentile cutoff would drift as the graph mutates; use the fixed -dmax cutoff or none")
		os.Exit(2)
	}

	logger := log.New(os.Stderr, "hsgfd: ", log.LstdFlags)

	// buildSnapshot loads the serving graph — from the artifact store
	// when one is configured (newest verified generation across the
	// binary and TSV kinds, preferring the memory-mapped binary load;
	// an empty store imports -in as generation 1 of both kinds), from
	// the -in graph file otherwise — and wraps it as an immutable
	// serving snapshot. It runs at boot and again on every hot reload,
	// off the request path.
	var st *hsgf.Store
	if *storeDir != "" {
		var err error
		st, err = hsgf.OpenStore(*storeDir, hsgf.StoreOptions{
			Retain: *retain,
			Log:    logger.Printf,
		})
		if err != nil {
			logger.Fatal(err)
		}
	}
	buildSnapshot := func() (*serve.Snapshot, error) {
		var (
			g      *hsgf.Graph
			gen    uint64
			source string
		)
		if st != nil {
			var err error
			g, gen, err = hsgf.LoadGraphSnapshotAuto(st)
			switch {
			case err == nil:
				source = "store:" + *storeDir
			case errors.Is(err, hsgf.ErrStoreNotFound) && *in != "":
				// Empty store + TSV input: import the graph as the
				// first generation, then serve it.
				g, err = hsgf.ReadGraphFile(*in)
				if err != nil {
					return nil, err
				}
				gen, err = hsgf.SaveGraphSnapshots(st, g)
				if err != nil {
					return nil, err
				}
				source = "store:" + *storeDir
				logger.Printf("imported %s into %s as generation %d", *in, *storeDir, gen)
			default:
				return nil, err
			}
		} else {
			var err error
			g, err = hsgf.ReadGraphFile(*in)
			if err != nil {
				return nil, err
			}
			source = "tsv:" + *in
		}

		opts := hsgf.Options{MaxEdges: *emax, MaskRootLabel: *mask, MaxDegree: *dmax}
		if *dmaxPct > 0 && *dmaxPct < 1 {
			opts.MaxDegree = hsgf.DegreePercentile(g, *dmaxPct)
		}
		ex, err := hsgf.NewExtractor(g, opts)
		if err != nil {
			return nil, err
		}
		snap := serve.NewSnapshot(ex)
		snap.Generation = gen
		snap.Source = source
		return snap, nil
	}

	// The flag's 0 means "off"; the config's 0 means "default", so map
	// explicitly: anything <= 0 disables the cache (and coalescing).
	cacheSize := *rowCache
	if cacheSize <= 0 {
		cacheSize = -1
	}

	serveCfg := serve.Config{
		MaxInFlight:        *maxInflight,
		MaxQueue:           *maxQueue,
		DefaultDeadline:    *defaultDeadline,
		MaxDeadline:        *maxDeadline,
		RootBudget:         *rootBudget,
		RootDeadline:       *rootDeadline,
		MaxRootsPerRequest: *maxRoots,
		RowCache:           cacheSize,
		Workers:            *workers,
		Breaker: serve.BreakerConfig{
			Window:    *brkWindow,
			TripRatio: *brkRatio,
			Cooldown:  *brkCooldown,
		},
		DrainGrace: *drainGrace,
		Log:        logger,
	}

	var srv *serve.Server
	var eng *ingest.Engine
	if *ingestOn {
		// Streaming-ingest mode: the engine owns the serving state. It
		// recovers from the newest verified ingest snapshot plus the WAL
		// tail; an empty store seeds from the graph artifact or the TSV.
		// Fleet followers take router-sequenced sub-batches, which carry
		// halo repair and may legitimately exceed the direct-client
		// mutation cap; the router bounds them to the fleet cap before
		// sequencing, so the engine must accept up to that bound.
		maxBatch := 0 // engine default
		if *fleetFollower {
			maxBatch = ingest.FleetMaxBatchMutations
		}
		var err error
		eng, err = ingest.Open(ingest.Config{
			Store:             st,
			Opts:              hsgf.Options{MaxEdges: *emax, MaskRootLabel: *mask, MaxDegree: *dmax},
			Workers:           *ingestWorkers,
			CompactEvery:      *ingestCompact,
			MaxBatchMutations: maxBatch,
			Log:               logger.Printf,
		}, func() (*graph.Graph, error) {
			if g, _, err := hsgf.LoadGraphSnapshotAuto(st); err == nil {
				return g, nil
			} else if !errors.Is(err, hsgf.ErrStoreNotFound) {
				return nil, err
			}
			if *in == "" {
				return nil, fmt.Errorf("ingest: store %s has no graph and no -in was given", *storeDir)
			}
			return hsgf.ReadGraphFile(*in)
		})
		if err != nil {
			logger.Fatal(err)
		}
		defer eng.Close()

		source := "ingest:" + *storeDir
		_, ex, fs, gen, lastSeq := eng.State()
		g := ex.Graph()
		logger.Printf("ingest: serving %d nodes, %d edges at generation %d, watermark %d",
			g.NumNodes(), g.NumEdges(), gen, lastSeq)
		srv = serve.NewServerSnapshot(&serve.Snapshot{
			Extractor:  ex,
			Features:   fs,
			Generation: gen,
			Source:     source,
		}, serveCfg)
		// The engine's publish hook swaps each applied batch into the
		// serving path; artifact hot reload stays disabled (no reloader →
		// admin reload answers 501) because two writers swapping the same
		// snapshot pointer could resurrect a pre-mutation generation.
		srv.SetIngestor(eng, source)
		if *fleetFollower {
			srv.SetFleetFollower(true)
			logger.Printf("ingest: fleet-follower mode, shard fleet watermark %d", eng.FleetWatermark())
		}
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				logger.Printf("SIGHUP ignored: hot reload is disabled in -ingest mode (the engine owns the serving state)")
			}
		}()
	} else {
		snap, err := buildSnapshot()
		if err != nil {
			logger.Fatal(err)
		}
		g := snap.Extractor.Graph()
		logger.Printf("loaded %s: %d nodes, %d edges, %d labels (emax=%d mask=%v, generation %d)",
			snap.Source, g.NumNodes(), g.NumEdges(), g.NumLabels(), *emax, *mask, snap.Generation)

		srv = serve.NewServerSnapshot(snap, serveCfg)

		// Hot reload: rebuild the snapshot off the request path and RCU-swap
		// it in. SIGHUP and POST /v1/admin/reload share the single-flight
		// Reload path; a failed reload (corrupt store, unreadable TSV) keeps
		// the current generation serving.
		srv.SetReloader(func(ctx context.Context) (*serve.Snapshot, error) {
			return buildSnapshot()
		})
		hup := make(chan os.Signal, 1)
		signal.Notify(hup, syscall.SIGHUP)
		go func() {
			for range hup {
				if _, err := srv.Reload(context.Background()); err != nil {
					logger.Printf("SIGHUP reload: %v", err)
				}
			}
		}()
	}

	// The profiling listener is separate from the serving address so it
	// can stay bound to localhost while the API is public, and so profile
	// scrapes never compete with request admission. Off by default.
	if *pprofAddr != "" {
		go func() {
			logger.Printf("pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				logger.Printf("pprof server: %v", err)
			}
		}()
	}

	// SIGTERM/SIGINT begin the graceful drain; a second signal kills the
	// process the default way (NotifyContext unregisters after the first).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := srv.ListenAndServe(ctx, *addr); err != nil {
		fmt.Fprintln(os.Stderr, "hsgfd:", err)
		os.Exit(1)
	}
}
