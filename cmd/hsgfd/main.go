// Command hsgfd is the hardened feature-serving daemon: it loads a graph
// in the TSV exchange format once, builds a census extractor over it, and
// serves heterogeneous subgraph features over a long-lived HTTP JSON API.
//
// Usage:
//
//	hsgfd -in graph.tsv [-addr :8080] [-emax 5] [-mask] \
//	      [-dmax-percentile 0.9] [-root-budget N] [-root-deadline 2s] \
//	      [-max-inflight 4] [-max-queue 8] [-default-deadline 10s] \
//	      [-drain-grace 15s] [-pprof-addr localhost:6060]
//
// Endpoints:
//
//	POST /v1/features  roots -> characteristic-sequence feature rows
//	GET  /v1/meta      graph/options fingerprint, slot names, limits
//	GET  /healthz      liveness
//	GET  /readyz       readiness (503 while draining)
//	GET  /debug/stats  admission/breaker/drain counters + latency histogram
//
// The daemon is built for the heavy-tailed per-root extraction cost of
// real networks: requests pass bounded admission (429 + Retry-After when
// the wait queue is full), a circuit breaker around extraction (503 with
// a typed JSON error while open), and per-request deadlines that degrade
// results row by row (HTTP 200 + flags) rather than failing the batch.
// SIGTERM/SIGINT starts a graceful drain: the listener closes, in-flight
// requests get -drain-grace to finish, then the process exits 0 on a
// clean drain and 1 otherwise.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux; served only via -pprof-addr
	"os"
	"os/signal"
	"syscall"
	"time"

	"hsgf"
	"hsgf/internal/serve"
)

func main() {
	var (
		in      = flag.String("in", "", "input graph in TSV exchange format (required)")
		addr    = flag.String("addr", ":8080", "listen address")
		emax    = flag.Int("emax", 5, "maximum edges per subgraph")
		dmaxPct = flag.Float64("dmax-percentile", 0, "hub cutoff as a degree percentile in (0,1); 0 disables")
		mask    = flag.Bool("mask", false, "mask the root node's label during extraction")

		rootBudget   = flag.Int64("root-budget", 0, "default max subgraphs enumerated per root; 0 = unlimited")
		rootDeadline = flag.Duration("root-deadline", 0, "default max wall-clock time per root; 0 = unlimited")

		maxInflight = flag.Int("max-inflight", 4, "concurrent extracting requests")
		maxQueue    = flag.Int("max-queue", 0, "queued requests beyond in-flight before shedding (0 = 2x in-flight)")
		maxRoots    = flag.Int("max-roots", 256, "max roots per request")
		workers     = flag.Int("request-workers", 1, "census workers per request")

		defaultDeadline = flag.Duration("default-deadline", 10*time.Second, "extraction deadline when the client sends none")
		maxDeadline     = flag.Duration("max-deadline", 60*time.Second, "cap on client-requested deadlines")

		brkWindow   = flag.Int("breaker-window", 20, "request outcomes in the breaker's sliding window")
		brkRatio    = flag.Float64("breaker-ratio", 0.5, "windowed failure ratio that opens the breaker")
		brkCooldown = flag.Duration("breaker-cooldown", 5*time.Second, "open time before half-open probes")

		drainGrace = flag.Duration("drain-grace", 15*time.Second, "max wait for in-flight requests on shutdown")

		pprofAddr = flag.String("pprof-addr", "", "serve net/http/pprof on this address (e.g. localhost:6060); empty disables")
	)
	flag.Parse()
	if *in == "" {
		flag.Usage()
		os.Exit(2)
	}

	logger := log.New(os.Stderr, "hsgfd: ", log.LstdFlags)
	f, err := os.Open(*in)
	if err != nil {
		logger.Fatal(err)
	}
	g, err := hsgf.ReadTSV(f)
	closeErr := f.Close()
	if err != nil {
		logger.Fatal(err)
	}
	if closeErr != nil {
		logger.Fatal(closeErr)
	}

	opts := hsgf.Options{MaxEdges: *emax, MaskRootLabel: *mask}
	if *dmaxPct > 0 && *dmaxPct < 1 {
		opts.MaxDegree = hsgf.DegreePercentile(g, *dmaxPct)
	}
	ex, err := hsgf.NewExtractor(g, opts)
	if err != nil {
		logger.Fatal(err)
	}
	logger.Printf("loaded %s: %d nodes, %d edges, %d labels (emax=%d dmax=%d mask=%v)",
		*in, g.NumNodes(), g.NumEdges(), g.NumLabels(), opts.MaxEdges, opts.MaxDegree, opts.MaskRootLabel)

	srv := serve.NewServer(ex, serve.Config{
		MaxInFlight:        *maxInflight,
		MaxQueue:           *maxQueue,
		DefaultDeadline:    *defaultDeadline,
		MaxDeadline:        *maxDeadline,
		RootBudget:         *rootBudget,
		RootDeadline:       *rootDeadline,
		MaxRootsPerRequest: *maxRoots,
		Workers:            *workers,
		Breaker: serve.BreakerConfig{
			Window:    *brkWindow,
			TripRatio: *brkRatio,
			Cooldown:  *brkCooldown,
		},
		DrainGrace: *drainGrace,
		Log:        logger,
	})

	// The profiling listener is separate from the serving address so it
	// can stay bound to localhost while the API is public, and so profile
	// scrapes never compete with request admission. Off by default.
	if *pprofAddr != "" {
		go func() {
			logger.Printf("pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				logger.Printf("pprof server: %v", err)
			}
		}()
	}

	// SIGTERM/SIGINT begin the graceful drain; a second signal kills the
	// process the default way (NotifyContext unregisters after the first).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := srv.ListenAndServe(ctx, *addr); err != nil {
		fmt.Fprintln(os.Stderr, "hsgfd:", err)
		os.Exit(1)
	}
}
